#ifndef RST_RSTKNN_SEARCH_IMPL_H_
#define RST_RSTKNN_SEARCH_IMPL_H_

/// The templated branch-and-bound engine behind RstknnSearcher, shared by
/// rstknn.cc (single-tree views) and rst::shard (forest views). Everything
/// here is an implementation detail: include it only from .cc files that
/// instantiate a search over a concrete tree view.
///
/// The tree-view abstraction: both RSTkNN algorithms are templates over a
/// read-only view so the pointer IUR-/CIUR-tree, the frozen flat-layout
/// snapshot (rst::frozen), and the sharded forest (rst::shard) run the exact
/// same code. A view names nodes and entries by a NodeRef/EntryRef (pointers
/// for the pointer tree, dense indices for the frozen one, packed
/// (shard, index) words for the forest) and exposes:
///   * topology    — Root, NumEntries, EntryAt, Child, IsObject, Id, Count;
///   * geometry    — RectOf;
///   * text        — Summary / ClusterSummary as SummarySpan, which feed the
///                   single span-kernel implementation of every similarity
///                   bound, so all floats are bit-identical across views;
///   * keys        — NodeKey/EntryKey map refs to uintptr_t so one
///                   ProbeScratch::Impl (hash sets/memos) serves all views;
///   * I/O         — Charge (simulated or real through a buffer pool);
///   * explain     — ExplainInfo yielding the deterministic preorder ids;
///   * scope hooks — ProbeRoot / CollectSelfPath / ForEachContextEntry,
///                   which default to the single-tree behaviour and let a
///                   shard-scoped view search one tree of a forest while
///                   counting competitors forest-wide (DESIGN.md §15):
///       - ProbeRoot() is where CountCompetitors starts its best-first
///         descent (default: Root());
///       - CollectSelfPath() collects the node-key set on the query object's
///         root path (default: a descent from Root());
///       - ForEachContextEntry() yields extra contributor-only entries that
///         the contribution-list algorithm must account for but never report
///         (default: none; the forest view yields one virtual entry per
///         foreign shard).
/// Entry iteration order is identical in all views, every queue receives the
/// same insertion sequence, and the memo containers are never iterated — so
/// results, RstknnStats, and EXPLAIN output are byte-identical.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rst/common/check.h"
#include "rst/frozen/frozen.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/explain.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/phase_timer.h"
#include "rst/obs/trace.h"
#include "rst/rstknn/rstknn.h"
#include "rst/storage/codec.h"

namespace rst {
namespace rstknn_internal {

/// Memoized blended bounds of (candidate, other) for one candidate's two
/// probes. The spatial legs are kept so a later lazy cluster refinement can
/// recombine them with tighter text bounds. Refined bounds are strictly
/// tighter and remain valid brackets, so reusing them across the guaranteed
/// and potential probes never changes answers — only the redundant kernel
/// evaluations disappear.
struct CandPairBounds {
  double spatial_min = 0.0;
  double spatial_max = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  bool refined = false;
};

/// Key/hash for the contribution-list pair memo (ordered entry-key pair).
struct EntryPairKey {
  uintptr_t a = 0;
  uintptr_t b = 0;
  bool operator==(const EntryPairKey& o) const { return a == o.a && b == o.b; }
};
struct EntryPairKeyHash {
  size_t operator()(const EntryPairKey& k) const {
    const size_t h1 = std::hash<uintptr_t>()(k.a);
    const size_t h2 = std::hash<uintptr_t>()(k.b);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

struct PairBoundsValue {
  double mn = 0.0;
  double mx = 0.0;
};

}  // namespace rstknn_internal

/// The working memory behind the public ProbeScratch handle. Entry pair
/// bounds are pure functions of immutable tree entries, so the memos are safe
/// to keep for as long as their scope allows: cand_bounds spans one
/// candidate's two probes, pair_bounds spans one whole contribution-list
/// query. clear() keeps hash-table buckets, which is the point of reuse.
/// Nodes and entries are keyed by the view's uintptr_t keys (pointers or
/// dense indices), so the same scratch serves every tree view — never mix
/// views within one query, which no searcher does.
struct ProbeScratch::Impl {
  std::unordered_set<uintptr_t> self_path;
  std::unordered_set<uintptr_t> charged;
  std::unordered_map<uintptr_t, rstknn_internal::CandPairBounds> cand_bounds;
  bool self_tb_valid = false;
  TextBounds self_tb;
  std::unordered_map<rstknn_internal::EntryPairKey,
                     rstknn_internal::PairBoundsValue,
                     rstknn_internal::EntryPairKeyHash>
      pair_bounds;

  void ResetForQuery() {
    self_path.clear();
    charged.clear();
    pair_bounds.clear();
    ResetForCandidate();
  }
  void ResetForCandidate() {
    cand_bounds.clear();
    self_tb_valid = false;
  }
};

namespace rstknn_internal {

/// Collects the node-key set on the root-to-leaf path of object `id`.
template <typename View>
bool CollectPath(const View& view, typename View::NodeRef node, ObjectId id,
                 std::unordered_set<uintptr_t>* path) {
  for (size_t i = 0, n = view.NumEntries(node); i < n; ++i) {
    const auto e = view.EntryAt(node, i);
    if (view.IsObject(e)) {
      if (view.Id(e) == id) {
        path->insert(View::NodeKey(node));
        return true;
      }
    } else if (CollectPath(view, view.Child(e), id, path)) {
      path->insert(View::NodeKey(node));
      return true;
    }
  }
  return false;
}

struct PointerTreeView {
  using NodeRef = const IurTree::Node*;
  using EntryRef = const IurTree::Entry*;

  const IurTree* tree = nullptr;

  size_t TreeSize() const { return tree->size(); }
  NodeRef Root() const { return tree->root(); }
  size_t NumEntries(NodeRef n) const { return n->entries.size(); }
  EntryRef EntryAt(NodeRef n, size_t i) const { return &n->entries[i]; }
  bool IsObject(EntryRef e) const { return e->is_object(); }
  ObjectId Id(EntryRef e) const { return e->id; }
  NodeRef Child(EntryRef e) const { return e->child; }
  uint32_t Count(EntryRef e) const { return e->count(); }
  const Rect& RectOf(EntryRef e) const { return e->rect; }
  SummarySpan Summary(EntryRef e) const { return AsSpan(e->summary); }
  size_t NumClusters(EntryRef e) const { return e->clusters.size(); }
  SummarySpan ClusterSummary(EntryRef e, size_t i) const {
    return AsSpan(e->clusters[i].second);
  }
  uint32_t ClusterCount(EntryRef e, size_t i) const {
    return e->clusters[i].second.count;
  }

  static uintptr_t NodeKey(NodeRef n) { return reinterpret_cast<uintptr_t>(n); }
  static uintptr_t EntryKey(EntryRef e) {
    return reinterpret_cast<uintptr_t>(e);
  }

  /// Scope hooks (single-tree defaults; see the header comment).
  NodeRef ProbeRoot() const { return Root(); }
  void CollectSelfPath(ObjectId id, std::unordered_set<uintptr_t>* path) const {
    CollectPath(*this, Root(), id, path);
  }
  template <typename Fn>
  void ForEachContextEntry(Fn&&) const {}

  /// Charges one node access. In real-I/O mode (options.pool set) the node's
  /// serialized inverted file is read through the buffer pool — hits charge
  /// nothing and the pool's hit/miss/fill metrics reflect genuine traffic;
  /// otherwise the papers' simulated accounting applies.
  void Charge(NodeRef n, const RstknnOptions& options,
              RstknnStats* stats) const {
    if (options.pool != nullptr) {
      obs::TraceSpan span(options.trace, obs::names::kSpanStorageReadNode);
      obs::PhaseTimer io_phase(options.profiler, obs::Phase::kIo);
      InvertedFile invfile;
      if (tree->ReadNodePayload(n, options.pool, &stats->io, &invfile).ok()) {
        return;
      }
      // Payloads not finalized: fall back below (nothing was charged).
    }
    tree->ChargeAccess(n, &stats->io);
  }

  void PrepareExplain(const RstknnOptions& options, const ExplainIndex** index,
                      std::unique_ptr<ExplainIndex>* local) const {
    *index = options.explain_index;
    if (*index == nullptr) {
      *local = std::make_unique<ExplainIndex>(*tree);
      *index = local->get();
    }
  }
  ExplainIndex::Info ExplainInfo(EntryRef e, const ExplainIndex* index) const {
    return index->Lookup(e);
  }
};

struct FrozenTreeView {
  using NodeRef = uint32_t;
  using EntryRef = uint32_t;

  const frozen::FrozenTree* tree = nullptr;

  size_t TreeSize() const { return tree->size(); }
  NodeRef Root() const { return tree->root(); }
  size_t NumEntries(NodeRef n) const { return tree->EntryCount(n); }
  EntryRef EntryAt(NodeRef n, size_t i) const {
    return tree->EntryBegin(n) + static_cast<uint32_t>(i);
  }
  bool IsObject(EntryRef e) const { return tree->IsObject(e); }
  ObjectId Id(EntryRef e) const { return tree->ObjectIdOf(e); }
  NodeRef Child(EntryRef e) const { return tree->Child(e); }
  uint32_t Count(EntryRef e) const { return tree->Count(e); }
  const Rect& RectOf(EntryRef e) const { return tree->EntryRect(e); }
  SummarySpan Summary(EntryRef e) const { return tree->Summary(e); }
  size_t NumClusters(EntryRef e) const { return tree->NumClusters(e); }
  SummarySpan ClusterSummary(EntryRef e, size_t i) const {
    return tree->ClusterSummary(e, static_cast<uint32_t>(i));
  }
  uint32_t ClusterCount(EntryRef e, size_t i) const {
    return tree->ClusterCount(e, static_cast<uint32_t>(i));
  }

  static uintptr_t NodeKey(NodeRef n) { return n; }
  static uintptr_t EntryKey(EntryRef e) { return e; }

  /// Scope hooks (single-tree defaults; see the header comment).
  NodeRef ProbeRoot() const { return Root(); }
  void CollectSelfPath(ObjectId id, std::unordered_set<uintptr_t>* path) const {
    CollectPath(*this, Root(), id, path);
  }
  template <typename Fn>
  void ForEachContextEntry(Fn&&) const {}

  void Charge(NodeRef n, const RstknnOptions& options,
              RstknnStats* stats) const {
    if (options.pool != nullptr) {
      obs::TraceSpan span(options.trace, obs::names::kSpanStorageReadNode);
      obs::PhaseTimer io_phase(options.profiler, obs::Phase::kIo);
      InvertedFile invfile;
      if (tree->ReadNodePayload(n, options.pool, &stats->io, &invfile).ok()) {
        return;
      }
    }
    tree->ChargeAccess(n, &stats->io);
  }

  /// Frozen entry indices ARE the explain numbering (index + 1); no
  /// ExplainIndex is built or consulted.
  void PrepareExplain(const RstknnOptions&, const ExplainIndex**,
                      std::unique_ptr<ExplainIndex>*) const {}
  ExplainIndex::Info ExplainInfo(EntryRef e, const ExplainIndex*) const {
    return ExplainIndex::Info{static_cast<uint64_t>(e) + 1,
                              tree->EntryLevel(e)};
  }
};

/// Generic counterparts of EntryTextBounds / EntryPairTextBounds /
/// EntryTextBoundsVsClusters / EntryClusterEntropy (iurtree.h). Cluster
/// iteration order and kernel call sequence match the pointer-tree free
/// functions exactly — those now share the same span kernels underneath, so
/// the computed doubles are bit-identical.
template <typename View>
TextBounds ViewEntryTextBounds(const View& view, typename View::EntryRef e,
                               const SummarySpan& other,
                               const TextSimilarity& sim) {
  const size_t nc = view.NumClusters(e);
  if (nc == 0) {
    const SummarySpan s = view.Summary(e);
    return {sim.MinSim(s, other), sim.MaxSim(s, other)};
  }
  TextBounds bounds{1.0, 0.0};
  for (size_t i = 0; i < nc; ++i) {
    const SummarySpan s = view.ClusterSummary(e, i);
    bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(s, other));
    bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(s, other));
  }
  return bounds;
}

template <typename View>
TextBounds ViewPairTextBounds(const View& view, typename View::EntryRef a,
                              typename View::EntryRef b,
                              const TextSimilarity& sim) {
  const size_t na = view.NumClusters(a);
  const size_t nb = view.NumClusters(b);
  if (na == 0 && nb == 0) {
    const SummarySpan sa = view.Summary(a);
    const SummarySpan sb = view.Summary(b);
    return {sim.MinSim(sa, sb), sim.MaxSim(sa, sb)};
  }
  // Treat an unclustered side as one blended cluster.
  TextBounds bounds{1.0, 0.0};
  for (size_t i = 0; i < std::max<size_t>(na, 1); ++i) {
    const SummarySpan sa = na == 0 ? view.Summary(a) : view.ClusterSummary(a, i);
    for (size_t j = 0; j < std::max<size_t>(nb, 1); ++j) {
      const SummarySpan sb =
          nb == 0 ? view.Summary(b) : view.ClusterSummary(b, j);
      bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(sa, sb));
      bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(sa, sb));
    }
  }
  return bounds;
}

template <typename View>
TextBounds ViewBoundsVsClusters(const View& view, const SummarySpan& a,
                                typename View::EntryRef b,
                                const TextSimilarity& sim) {
  const size_t nb = view.NumClusters(b);
  if (nb == 0) {
    const SummarySpan sb = view.Summary(b);
    return {sim.MinSim(a, sb), sim.MaxSim(a, sb)};
  }
  TextBounds bounds{1.0, 0.0};
  for (size_t i = 0; i < nb; ++i) {
    const SummarySpan sb = view.ClusterSummary(b, i);
    bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(a, sb));
    bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(a, sb));
  }
  return bounds;
}

template <typename View>
double ViewClusterEntropy(const View& view, typename View::EntryRef e) {
  const size_t nc = view.NumClusters(e);
  if (nc == 0) return 0.0;
  std::vector<uint32_t> counts;
  counts.reserve(nc);
  for (size_t i = 0; i < nc; ++i) counts.push_back(view.ClusterCount(e, i));
  return ClusterEntropy(counts);
}

/// A candidate entry of the branch-and-bound search: a subtree (or object)
/// whose membership in the answer is still to be decided.
template <typename View>
struct Candidate {
  typename View::EntryRef entry{};
  /// NodeKeys of the root path whose subtrees contain this entry (used to
  /// avoid double-counting the candidate's own objects during probes).
  std::vector<uintptr_t> path;
  bool contains_self = false;  ///< subtree holds the query object
  double q_min = 0.0;          ///< MinST(q, E)
  double q_max = 0.0;          ///< MaxST(q, E)
  double priority = 0.0;
};

template <typename View>
void CollectObjectIds(const View& view, typename View::EntryRef entry,
                      ObjectId exclude, std::vector<ObjectId>* out) {
  if (view.IsObject(entry)) {
    if (view.Id(entry) != exclude) out->push_back(view.Id(entry));
    return;
  }
  const auto child = view.Child(entry);
  for (size_t i = 0, n = view.NumEntries(child); i < n; ++i) {
    CollectObjectIds(view, view.EntryAt(child, i), exclude, out);
  }
}

/// Per-query EXPLAIN state: the recorder (reset + stamped here) and the
/// entry-numbering source — the pointer view uses an ExplainIndex (the
/// caller's shared one or a private fallback); the frozen view reads ids off
/// its entry indices. Everything is a no-op when no recorder is attached.
template <typename View>
struct ExplainSink {
  obs::ExplainRecorder* recorder = nullptr;
  obs::HeatmapRecorder* heatmap = nullptr;
  const ExplainIndex* index = nullptr;
  std::unique_ptr<ExplainIndex> local_index;

  ExplainSink(const View& view, const RstknnOptions& options,
              std::string_view algorithm) {
    recorder = options.explain;
    heatmap = options.heatmap;
    if (recorder == nullptr && heatmap == nullptr) return;
    if (recorder != nullptr) {
      recorder->Reset();
      recorder->SetAlgorithm(algorithm);
    }
    // The heatmap is deliberately NOT reset: it accumulates across queries.
    view.PrepareExplain(options, &index, &local_index);
  }

  void Record(const View& view, typename View::EntryRef entry, double q_min,
              double q_max, obs::ExplainVerdict verdict,
              obs::ExplainBound bound, uint64_t decided_objects) const {
    if (recorder == nullptr && heatmap == nullptr) return;
    const ExplainIndex::Info info = view.ExplainInfo(entry, index);
    if (recorder != nullptr) {
      recorder->Record({info.id, info.level, verdict, bound, q_min, q_max,
                        decided_objects});
    }
    if (heatmap != nullptr) {
      heatmap->Record(info.id, info.level, verdict, bound, decided_objects);
    }
  }
};

/// Counts competitor objects of candidate E against `threshold`, stopping at
/// k. In *guaranteed* mode (prune test, threshold = MaxST(q,E)) an object o'
/// is counted only when every object of E is certainly more similar to o'
/// than to q: pair MinST(E, o') > threshold; disjoint subtrees whose MinST
/// already clears the threshold are counted wholesale. In *potential* mode
/// (report test, threshold = MinST(q,E)) an object is counted when it COULD
/// exceed the threshold (pair MaxST > threshold). Traversal is best-first by
/// pair MaxST, so it terminates as soon as no remaining subtree can matter —
/// and for an object candidate in guaranteed mode the count is exact, which
/// forces a decision at leaf level. The descent starts at view.ProbeRoot(),
/// so a shard-scoped view counts competitors across the whole forest.
template <typename View>
size_t CountCompetitors(const View& view, const StScorer& scorer,
                        const RstknnOptions& options,
                        const Candidate<View>& cand, ProbeScratch::Impl* mem,
                        double threshold, size_t k, ObjectId exclude,
                        bool guaranteed, RstknnStats* stats) {
  using NodeRef = typename View::NodeRef;
  const auto& exclude_path = mem->self_path;
  const auto e = cand.entry;
  const Rect& e_rect = view.RectOf(e);
  const SummarySpan e_sum = view.Summary(e);
  const bool e_is_object = view.IsObject(e);
  const double alpha = scorer.options().alpha;
  ++stats->probes;
  auto charge_once = [&](NodeRef node) {
    // The branch-and-bound keeps every opened node resident for the whole
    // query (the contribution lists reference them), so each node costs its
    // I/O once per query regardless of how many probes revisit it.
    if (mem->charged.insert(View::NodeKey(node)).second) {
      view.Charge(node, options, stats);
    }
  };

  size_t count = 0;
  // Self term: the candidate's own other objects compete among themselves.
  // The pair text bounds are threshold-independent, so the potential probe
  // reuses what the guaranteed probe computed.
  uint32_t own = view.Count(e) - (cand.contains_self ? 1 : 0);
  if (own > 1) {
    if (!mem->self_tb_valid) {
      mem->self_tb = ViewPairTextBounds(view, e, e, scorer.text());
      mem->self_tb_valid = true;
      ++stats->bound_computations;
    }
    const TextBounds& tb = mem->self_tb;
    const double intra =
        guaranteed
            ? alpha * scorer.SpatialSim(MaxDistance(e_rect, e_rect)) +
                  (1.0 - alpha) * tb.min_sim
            : alpha * 1.0 + (1.0 - alpha) * tb.max_sim;
    if (intra > threshold) {
      count += own - 1;
      if (count >= k) return k;
    }
  }

  // Pair bounds with lazy cluster refinement: the cheap blended-summary
  // bound decides most entries outright; per-cluster bounds (up to
  // |clusters|^2 kernel evaluations) are computed only when the blended
  // bound straddles the threshold and could change the outcome. Results are
  // memoized per candidate (keyed by the other entry) so the potential probe
  // reuses the guaranteed probe's kernels; a pair refined once stays refined
  // — tighter bounds are still valid brackets at the other threshold.
  auto pair_bounds = [&](typename View::EntryRef other) {
    auto [it, inserted] = mem->cand_bounds.try_emplace(View::EntryKey(other));
    CandPairBounds& cb = it->second;
    const Rect& other_rect = view.RectOf(other);
    if (inserted) {
      cb.spatial_min = alpha * scorer.SpatialSim(MaxDistance(e_rect, other_rect));
      cb.spatial_max = alpha * scorer.SpatialSim(MinDistance(e_rect, other_rect));
      ++stats->bound_computations;
      const SummarySpan other_sum = view.Summary(other);
      cb.mn = cb.spatial_min +
              (1.0 - alpha) * scorer.text().MinSim(e_sum, other_sum);
      cb.mx = cb.spatial_max +
              (1.0 - alpha) * scorer.text().MaxSim(e_sum, other_sum);
    }
    if (!cb.refined && view.NumClusters(other) > 0 && cb.mn <= threshold &&
        cb.mx > threshold) {
      const TextBounds tb =
          ViewBoundsVsClusters(view, e_sum, other, scorer.text());
      ++stats->bound_computations;
      cb.mn = cb.spatial_min + (1.0 - alpha) * tb.min_sim;
      cb.mx = cb.spatial_max + (1.0 - alpha) * tb.max_sim;
      cb.refined = true;
    }
    return std::make_pair(cb.mn, cb.mx);
  };

  auto is_own_subtree = [&](NodeRef node) {
    return !e_is_object && node == view.Child(e);
  };
  auto is_ancestor = [&](NodeRef node) {
    return std::find(cand.path.begin(), cand.path.end(),
                     View::NodeKey(node)) != cand.path.end();
  };

  struct ProbeItem {
    double max_st;
    double min_st;
    NodeRef node;
    bool contains_exclude;
    bool operator<(const ProbeItem& other) const {
      return max_st < other.max_st;
    }
  };
  std::priority_queue<ProbeItem> pq;
  pq.push({1.0, 0.0, view.ProbeRoot(), true});

  while (!pq.empty()) {
    const ProbeItem item = pq.top();
    pq.pop();
    ++stats->pq_pops;
    if (item.max_st <= threshold) break;  // nothing left can matter
    charge_once(item.node);
    for (size_t i = 0, n = view.NumEntries(item.node); i < n; ++i) {
      const auto child = view.EntryAt(item.node, i);
      if (view.IsObject(child)) {
        if (view.Id(child) == exclude) continue;
        if (e_is_object && view.Id(child) == view.Id(e)) continue;
        const auto [mn, mx] = pair_bounds(child);
        const double value = guaranteed ? mn : mx;
        if (value > threshold && ++count >= k) return k;
        continue;
      }
      const NodeRef child_node = view.Child(child);
      if (is_own_subtree(child_node)) continue;  // covered by the self term
      const auto [mn, mx] = pair_bounds(child);
      if (mx <= threshold) continue;  // no object inside can matter
      const bool overlaps_cand = is_ancestor(child_node);
      const bool overlaps_excl =
          exclude_path.count(View::NodeKey(child_node)) > 0;
      if (mn > threshold && !overlaps_cand) {
        // Every object in this disjoint subtree clears the threshold.
        count += view.Count(child) - (overlaps_excl ? 1 : 0);
        if (count >= k) return k;
        continue;
      }
      pq.push({mx, mn, child_node, overlaps_excl});
    }
  }
  return count;
}

template <typename View>
RstknnResult SearchProbe(const View& view, const Dataset& dataset,
                         const StScorer& scorer, const RstknnQuery& query,
                         const RstknnOptions& options) {
  using NodeRef = typename View::NodeRef;
  using EntryRef = typename View::EntryRef;
  RstknnResult result;
  if (view.TreeSize() == 0 || query.k == 0) return result;
  obs::QueryTrace* trace = options.trace;
  obs::PhaseProfiler* profiler = options.profiler;
  if (trace != nullptr) trace->Enter(obs::names::kSpanSetup);
  if (profiler != nullptr) profiler->Enter(obs::Phase::kDescent);
  const ExplainSink<View> explain(view, options, "probe");
  const double alpha = scorer.options().alpha;
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);
  const SummarySpan qspan = AsSpan(qsum);

  // Working memory: reuse the caller's scratch (clearing keeps hash-table
  // buckets warm across a batch) or allocate a query-local one.
  std::unique_ptr<ProbeScratch> local_scratch;
  if (options.scratch == nullptr) {
    local_scratch = std::make_unique<ProbeScratch>();
  }
  ProbeScratch::Impl* mem =
      (options.scratch != nullptr ? options.scratch : local_scratch.get())
          ->impl();
  mem->ResetForQuery();
  std::unordered_set<uintptr_t>& self_path = mem->self_path;
  if (query.self != IurTree::kNoObject) {
    view.CollectSelfPath(query.self, &self_path);
  }
  std::unordered_set<uintptr_t>& charged = mem->charged;  // nodes paid for

  // Candidates live in a deque-like pool; the work queue orders them by a
  // static priority (upper-bound similarity to q, optionally biased by
  // cluster entropy under the TE policy).
  std::vector<std::unique_ptr<Candidate<View>>> pool;
  struct QueueItem {
    double priority;
    Candidate<View>* cand;
    bool operator<(const QueueItem& other) const {
      return priority < other.priority;
    }
  };
  std::priority_queue<QueueItem> work;

  auto add_candidate = [&](EntryRef e, std::vector<uintptr_t> path) {
    if (view.IsObject(e) && view.Id(e) == query.self) return;  // never a
                                                               // candidate
    auto cand = std::make_unique<Candidate<View>>();
    cand->entry = e;
    cand->path = std::move(path);
    if (view.IsObject(e)) {
      const StObject& obj = dataset.object(view.Id(e));
      cand->q_min = cand->q_max =
          scorer.Score(obj.loc, obj.doc, query.loc, *query.doc);
    } else {
      cand->contains_self =
          self_path.count(View::NodeKey(view.Child(e))) > 0;
      const TextBounds tb = ViewEntryTextBounds(view, e, qspan, scorer.text());
      const Rect& rect = view.RectOf(e);
      cand->q_min = alpha * scorer.SpatialSim(MaxDistance(query.loc, rect)) +
                    (1.0 - alpha) * tb.min_sim;
      cand->q_max = alpha * scorer.SpatialSim(MinDistance(query.loc, rect)) +
                    (1.0 - alpha) * tb.max_sim;
    }
    cand->priority = cand->q_max;
    if (options.expand == ExpandPolicy::kTextEntropy) {
      cand->priority += options.entropy_weight * ViewClusterEntropy(view, e);
    }
    ++result.stats.entries_created;
    work.push({cand->priority, cand.get()});
    pool.push_back(std::move(cand));
  };

  const NodeRef root = view.Root();
  charged.insert(View::NodeKey(root));
  view.Charge(root, options, &result.stats);
  for (size_t i = 0, n = view.NumEntries(root); i < n; ++i) {
    add_candidate(view.EntryAt(root, i), {View::NodeKey(root)});
  }
  if (profiler != nullptr) profiler->Exit();  // descent (setup)
  if (trace != nullptr) trace->Exit();  // setup

  while (!work.empty()) {
    Candidate<View>* cand = work.top().cand;
    work.pop();
    ++result.stats.pq_pops;
    const bool object = view.IsObject(cand->entry);
    const uint32_t cand_count = view.Count(cand->entry);

    // Prune test: at least k competitors are guaranteed to beat q for every
    // object of the candidate (MaxST(q,E) < kNNL(E)).
    mem->ResetForCandidate();
    size_t guaranteed;
    {
      obs::TraceSpan span(trace, obs::names::kSpanProbeGuaranteed);
      obs::PhaseTimer bounds_phase(profiler, obs::Phase::kBounds);
      const uint64_t bounds_before = result.stats.bound_computations;
      const uint64_t pops_before = result.stats.pq_pops;
      guaranteed = CountCompetitors(view, scorer, options, *cand, mem,
                                    cand->q_max, query.k, query.self,
                                    /*guaranteed=*/true, &result.stats);
      span.AddCount(obs::names::kCountBoundComputations,
                    result.stats.bound_computations - bounds_before);
      span.AddCount(obs::names::kCountPqPops, result.stats.pq_pops - pops_before);
    }
    if (guaranteed >= query.k) {
      ++result.stats.pruned_entries;
      explain.Record(view, cand->entry, cand->q_min, cand->q_max,
                     object ? obs::ExplainVerdict::kReportMiss
                            : obs::ExplainVerdict::kPrune,
                     object ? obs::ExplainBound::kExact
                            : obs::ExplainBound::kLowerBound,
                     cand_count - (cand->contains_self ? 1 : 0));
      continue;
    }
    // For an object candidate the guaranteed probe descends every straddling
    // subtree to exact object-object scores, so its count is exact: fewer
    // than k competitors beat q ⇒ the object is an answer. No second probe.
    if (object) {
      ++result.stats.reported_entries;
      explain.Record(view, cand->entry, cand->q_min, cand->q_max,
                     obs::ExplainVerdict::kReportHit, obs::ExplainBound::kExact,
                     1);
      result.answers.push_back(view.Id(cand->entry));
      continue;
    }
    // Report test: fewer than k competitors can possibly beat q for any
    // object of the candidate (MinST(q,E) >= kNNU(E)).
    size_t potential;
    {
      obs::TraceSpan span(trace, obs::names::kSpanProbePotential);
      obs::PhaseTimer bounds_phase(profiler, obs::Phase::kBounds);
      const uint64_t bounds_before = result.stats.bound_computations;
      const uint64_t pops_before = result.stats.pq_pops;
      potential = CountCompetitors(view, scorer, options, *cand, mem,
                                   cand->q_min, query.k, query.self,
                                   /*guaranteed=*/false, &result.stats);
      span.AddCount(obs::names::kCountBoundComputations,
                    result.stats.bound_computations - bounds_before);
      span.AddCount(obs::names::kCountPqPops, result.stats.pq_pops - pops_before);
    }
    if (potential < query.k) {
      ++result.stats.reported_entries;
      explain.Record(view, cand->entry, cand->q_min, cand->q_max,
                     obs::ExplainVerdict::kReportHit,
                     obs::ExplainBound::kUpperBound,
                     cand_count - (cand->contains_self ? 1 : 0));
      CollectObjectIds(view, cand->entry, query.self, &result.answers);
      continue;
    }
    // Undecided: objects are always decided by the exact guaranteed count
    // (bounds are tight at leaf level), so only nodes reach this point.
    RST_DCHECK(!object);
    obs::TraceSpan expand_span(trace, obs::names::kSpanExpand);
    obs::PhaseTimer descent_phase(profiler, obs::Phase::kDescent);
    const NodeRef child_node = view.Child(cand->entry);
    if (charged.insert(View::NodeKey(child_node)).second) {
      view.Charge(child_node, options, &result.stats);
    }
    ++result.stats.expansions;
    explain.Record(view, cand->entry, cand->q_min, cand->q_max,
                   obs::ExplainVerdict::kExpand, obs::ExplainBound::kNone, 0);
    std::vector<uintptr_t> child_path = cand->path;
    child_path.push_back(View::NodeKey(child_node));
    const size_t num_children = view.NumEntries(child_node);
    for (size_t i = 0; i < num_children; ++i) {
      add_candidate(view.EntryAt(child_node, i), child_path);
    }
    expand_span.AddCount(obs::names::kCountEntries, num_children);
  }

  {
    obs::PhaseTimer finalize_phase(profiler, obs::Phase::kFinalize);
    std::sort(result.answers.begin(), result.answers.end());
  }
  return result;
}

/// Accumulated (min_st, max_st, count) contributions; the k-th guaranteed /
/// potential similarity is read off the sorted list (2011 paper, §5).
struct Contribution {
  double min_st;
  double max_st;
  uint32_t count;
};

inline double KthSorted(std::vector<Contribution>* contributions, size_t k,
                        bool lower) {
  std::sort(contributions->begin(), contributions->end(),
            [lower](const Contribution& a, const Contribution& b) {
              return lower ? a.min_st > b.min_st : a.max_st > b.max_st;
            });
  uint64_t cum = 0;
  for (const Contribution& c : *contributions) {
    cum += c.count;
    if (cum >= k) return lower ? c.min_st : c.max_st;
  }
  return -1.0;
}

template <typename View>
RstknnResult SearchContributionList(const View& view, const Dataset& dataset,
                                    const StScorer& scorer,
                                    const RstknnQuery& query,
                                    const RstknnOptions& options) {
  using NodeRef = typename View::NodeRef;
  using EntryRef = typename View::EntryRef;
  RstknnResult result;
  if (view.TreeSize() == 0 || query.k == 0) return result;
  const ExplainSink<View> explain(view, options, "contribution_list");
  const double alpha = scorer.options().alpha;
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);
  const SummarySpan qspan = AsSpan(qsum);

  std::unique_ptr<ProbeScratch> local_scratch;
  if (options.scratch == nullptr) {
    local_scratch = std::make_unique<ProbeScratch>();
  }
  ProbeScratch::Impl* mem =
      (options.scratch != nullptr ? options.scratch : local_scratch.get())
          ->impl();
  mem->ResetForQuery();
  std::unordered_set<uintptr_t>& self_path = mem->self_path;
  if (query.self != IurTree::kNoObject) {
    view.CollectSelfPath(query.self, &self_path);
  }
  std::unordered_set<uintptr_t>& charged = mem->charged;

  enum class State { kUndecided, kPruned, kReported };
  struct FlatEntry {
    EntryRef entry{};
    State state = State::kUndecided;
    bool alive = true;           // not yet replaced by its children
    bool contains_self = false;  // subtree holds the query object
    double q_min = 0.0;
    double q_max = 0.0;
  };
  std::vector<FlatEntry> entries;

  auto add_entry = [&](EntryRef e, State inherited) {
    FlatEntry fe;
    fe.entry = e;
    fe.state = inherited;
    if (view.IsObject(e)) {
      fe.contains_self = (view.Id(e) == query.self);
      if (fe.contains_self) {
        fe.state = State::kPruned;  // never a candidate nor a contributor
      } else {
        const StObject& obj = dataset.object(view.Id(e));
        fe.q_min = fe.q_max =
            scorer.Score(obj.loc, obj.doc, query.loc, *query.doc);
      }
    } else {
      fe.contains_self = self_path.count(View::NodeKey(view.Child(e))) > 0;
      const TextBounds tb = ViewEntryTextBounds(view, e, qspan, scorer.text());
      const Rect& rect = view.RectOf(e);
      fe.q_min = alpha * scorer.SpatialSim(MaxDistance(query.loc, rect)) +
                 (1.0 - alpha) * tb.min_sim;
      fe.q_max = alpha * scorer.SpatialSim(MinDistance(query.loc, rect)) +
                 (1.0 - alpha) * tb.max_sim;
    }
    ++result.stats.entries_created;
    entries.push_back(fe);
  };

  auto expand = [&](size_t idx) {
    obs::TraceSpan span(options.trace, obs::names::kSpanExpand);
    obs::PhaseTimer descent_phase(options.profiler, obs::Phase::kDescent);
    FlatEntry& fe = entries[idx];
    const State inherited = fe.state;
    const NodeRef child_node = view.Child(fe.entry);
    if (charged.insert(View::NodeKey(child_node)).second) {
      view.Charge(child_node, options, &result.stats);
    }
    fe.alive = false;
    ++result.stats.expansions;
    explain.Record(view, fe.entry, fe.q_min, fe.q_max,
                   obs::ExplainVerdict::kExpand, obs::ExplainBound::kNone, 0);
    const size_t num_children = view.NumEntries(child_node);
    for (size_t i = 0; i < num_children; ++i) {
      add_entry(view.EntryAt(child_node, i), inherited);
    }
    span.AddCount(obs::names::kCountEntries, num_children);
  };

  // Pair bounds are pure functions of the two (immutable) entries, and each
  // pick recomputes its list against every live entry — memoizing across
  // picks turns the per-round cost from |live|² kernel evaluations into
  // lookups for every pair already seen.
  auto pair_bounds = [&](const FlatEntry& a, const FlatEntry& b) {
    auto [it, inserted] = mem->pair_bounds.try_emplace(
        EntryPairKey{View::EntryKey(a.entry), View::EntryKey(b.entry)});
    if (inserted) {
      const TextBounds tb =
          ViewPairTextBounds(view, a.entry, b.entry, scorer.text());
      ++result.stats.bound_computations;
      const Rect& ra = view.RectOf(a.entry);
      const Rect& rb = view.RectOf(b.entry);
      it->second.mn = alpha * scorer.SpatialSim(MaxDistance(ra, rb)) +
                      (1.0 - alpha) * tb.min_sim;
      it->second.mx = alpha * scorer.SpatialSim(MinDistance(ra, rb)) +
                      (1.0 - alpha) * tb.max_sim;
    }
    return std::make_pair(it->second.mn, it->second.mx);
  };

  const NodeRef root = view.Root();
  charged.insert(View::NodeKey(root));
  view.Charge(root, options, &result.stats);
  for (size_t i = 0, n = view.NumEntries(root); i < n; ++i) {
    add_entry(view.EntryAt(root, i), State::kUndecided);
  }
  // Foreign-scope contributors (sharded search): pre-decided entries that
  // compete in every contribution list but are never picked, reported, or
  // counted as answers here — their shard's own search decides them.
  view.ForEachContextEntry(
      [&](EntryRef e) { add_entry(e, State::kPruned); });

  auto capacity = [&](const FlatEntry& fe) -> uint32_t {
    const uint32_t n = view.Count(fe.entry);
    return fe.contains_self && n > 0 ? n - 1 : n;
  };

  while (true) {
    // Highest-priority undecided candidate.
    size_t pick = SIZE_MAX;
    double best_priority = -1.0;
    {
      obs::TraceSpan span(options.trace, obs::names::kSpanPick);
      obs::PhaseTimer descent_phase(options.profiler, obs::Phase::kDescent);
      for (size_t i = 0; i < entries.size(); ++i) {
        const FlatEntry& fe = entries[i];
        if (!fe.alive || fe.state != State::kUndecided) continue;
        double priority = fe.q_max;
        if (options.expand == ExpandPolicy::kTextEntropy) {
          priority +=
              options.entropy_weight * ViewClusterEntropy(view, fe.entry);
        }
        if (pick == SIZE_MAX || priority > best_priority) {
          pick = i;
          best_priority = priority;
        }
      }
    }
    if (pick == SIZE_MAX) break;

    // Contribution list over all live entries.
    std::vector<Contribution> contributions;
    contributions.reserve(entries.size());
    size_t best_blocker = SIZE_MAX;
    double best_blocker_score = -1.0;
    obs::QueryTrace* trace = options.trace;
    if (trace != nullptr) trace->Enter(obs::names::kSpanContributions);
    if (options.profiler != nullptr) {
      options.profiler->Enter(obs::Phase::kMerge);
    }
    const uint64_t bounds_before = result.stats.bound_computations;
    {
      const FlatEntry& cand = entries[pick];
      for (size_t j = 0; j < entries.size(); ++j) {
        if (j == pick || !entries[j].alive) continue;
        const uint32_t cap = capacity(entries[j]);
        if (cap == 0) continue;
        const auto [mn, mx] = pair_bounds(cand, entries[j]);
        contributions.push_back({mn, mx, cap});
        if (!view.IsObject(entries[j].entry) && mx > best_blocker_score) {
          best_blocker_score = mx;
          best_blocker = j;
        }
      }
      const uint32_t self_cap = capacity(cand);
      if (self_cap > 1) {
        // Self pair: MinDistance(rect, rect) = 0, so mx already carries the
        // maximal spatial term; mn uses the rect diameter.
        const auto [mn, mx] = pair_bounds(cand, cand);
        contributions.push_back({mn, mx, self_cap - 1});
      }
    }
    std::vector<Contribution> scratch = contributions;
    const double knn_lower = KthSorted(&scratch, query.k, /*lower=*/true);
    scratch = contributions;
    const double knn_upper = KthSorted(&scratch, query.k, /*lower=*/false);
    if (options.profiler != nullptr) options.profiler->Exit();  // merge
    if (trace != nullptr) {
      trace->AddCount(obs::names::kCountBoundComputations,
                      result.stats.bound_computations - bounds_before);
      trace->Exit();  // contributions
    }

    FlatEntry& cand = entries[pick];
    if (cand.q_max < knn_lower) {
      cand.state = State::kPruned;
      ++result.stats.pruned_entries;
      explain.Record(view, cand.entry, cand.q_min, cand.q_max,
                     view.IsObject(cand.entry)
                         ? obs::ExplainVerdict::kReportMiss
                         : obs::ExplainVerdict::kPrune,
                     obs::ExplainBound::kLowerBound, capacity(cand));
      continue;
    }
    if (cand.q_min >= knn_upper) {
      cand.state = State::kReported;
      ++result.stats.reported_entries;
      explain.Record(view, cand.entry, cand.q_min, cand.q_max,
                     obs::ExplainVerdict::kReportHit,
                     obs::ExplainBound::kUpperBound, capacity(cand));
      CollectObjectIds(view, cand.entry, query.self, &result.answers);
      continue;
    }
    if (!view.IsObject(cand.entry)) {
      expand(pick);
    } else {
      // Exact candidate blocked by a coarse contributor: refine the most
      // entangled live node. One exists, else bounds were exact and a
      // decision would have been forced.
      RST_DCHECK_NE(best_blocker, SIZE_MAX);
      expand(best_blocker);
    }
  }

  {
    obs::PhaseTimer finalize_phase(options.profiler, obs::Phase::kFinalize);
    std::sort(result.answers.begin(), result.answers.end());
  }
  return result;
}

}  // namespace rstknn_internal
}  // namespace rst

#endif  // RST_RSTKNN_SEARCH_IMPL_H_
