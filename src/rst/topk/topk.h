#ifndef RST_TOPK_TOPK_H_
#define RST_TOPK_TOPK_H_

#include <vector>

#include "rst/data/dataset.h"
#include "rst/iurtree/iurtree.h"
#include "rst/storage/io_stats.h"
#include "rst/text/similarity.h"

namespace rst {

/// One ranked answer of a top-k query.
struct TopKResult {
  ObjectId id = 0;
  double score = 0.0;

  friend bool operator==(const TopKResult& a, const TopKResult& b) {
    return a.id == b.id && a.score == b.score;
  }
};

/// A top-k spatial-textual query: a location, a query document / keyword
/// set, and k.
struct TopKQuery {
  Point loc;
  const TermVector* doc = nullptr;
  size_t k = 10;
  /// Optionally exclude one object (used when computing an object's own kNN
  /// among the rest of the collection).
  ObjectId exclude = IurTree::kNoObject;
  /// Boolean AND semantics: only objects containing *every* query term
  /// qualify (ranking among qualifiers unchanged). Subtrees whose union
  /// vector misses a query term are pruned wholesale.
  bool require_all_terms = false;
};

/// Best-first top-k search over an IUR-/IR-tree (Cong et al. 2009 style):
/// a max-priority queue keyed by the node upper-bound score; objects pop with
/// their exact score and are final once no node can beat them. Bounds are
/// cluster-aware on CIUR-trees.
class TopKSearcher {
 public:
  /// All referents must outlive the searcher.
  TopKSearcher(const IurTree* tree, const Dataset* dataset,
               const StScorer* scorer)
      : tree_(tree), dataset_(dataset), scorer_(scorer) {}

  /// Returns exactly min(k, |D| − excluded) results, ordered by descending
  /// score (ties by ascending id). Charges simulated I/O to `stats`. With a
  /// trace, records a `topk.search` span (pq_pops / expansions counts);
  /// aggregate counters (topk.*) always go to the global registry via
  /// handles cached across calls — the untraced path stays microsecond-hot.
  std::vector<TopKResult> Search(const TopKQuery& query,
                                 IoStats* stats = nullptr,
                                 obs::QueryTrace* trace = nullptr) const;

  /// Upper-bound combined score of `entry` w.r.t. the query (exposed for the
  /// algorithms built on top).
  double UpperBound(const IurTree::Entry& entry, const TopKQuery& query) const;

 private:
  const IurTree* tree_;
  const Dataset* dataset_;
  const StScorer* scorer_;
};

/// Reference oracle: exact scan of the whole collection.
std::vector<TopKResult> BruteForceTopK(const Dataset& dataset,
                                       const StScorer& scorer,
                                       const TopKQuery& query);

}  // namespace rst

#endif  // RST_TOPK_TOPK_H_
