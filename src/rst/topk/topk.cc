#include "rst/topk/topk.h"

#include <algorithm>
#include <queue>

#include "rst/common/stopwatch.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"

namespace rst {

namespace {

struct QueueItem {
  double score;       // upper bound for nodes, exact for objects
  bool is_object;
  ObjectId id;        // object id, or arbitrary for nodes
  const IurTree::Node* node;  // nullptr for objects

  /// Max-heap by score; objects before nodes at equal score (their score is
  /// exact and can be emitted); then ascending id for determinism.
  bool operator<(const QueueItem& other) const {
    if (score != other.score) return score < other.score;
    if (is_object != other.is_object) return !is_object;
    return id > other.id;
  }
};

}  // namespace

double TopKSearcher::UpperBound(const IurTree::Entry& entry,
                                const TopKQuery& query) const {
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);
  const TextBounds tb = EntryTextBounds(entry, qsum, scorer_->text());
  const double spatial =
      scorer_->SpatialSim(MinDistance(query.loc, entry.rect));
  return scorer_->options().alpha * spatial +
         (1.0 - scorer_->options().alpha) * tb.max_sim;
}

namespace {

/// True iff `candidate` contains every term of `required`.
bool ContainsAllTerms(const TermVector& candidate, const TermVector& required) {
  return candidate.OverlapCount(required) == required.size();
}

}  // namespace

namespace {

/// Cached registry handles — Search runs microseconds-hot (the precompute
/// baseline and the MaxBRSTkNN joint algorithm issue one per object/user),
/// so the per-query publishing cost must stay at a few relaxed atomic adds.
struct TopKMetrics {
  obs::Counter queries;
  obs::Counter pq_pops;
  obs::Counter expansions;
  obs::HistogramRef latency_ms;

  static const TopKMetrics& Get() {
    static const TopKMetrics* metrics = [] {
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      return new TopKMetrics{
          registry.GetCounter(obs::names::kTopkQueries),
          registry.GetCounter(obs::names::kTopkPqPops),
          registry.GetCounter(obs::names::kTopkExpansions),
          registry.GetHistogram(obs::names::kTopkQueryMs,
                                obs::HistogramSpec::LatencyMs())};
    }();
    return *metrics;
  }
};

}  // namespace

std::vector<TopKResult> TopKSearcher::Search(const TopKQuery& query,
                                             IoStats* stats,
                                             obs::QueryTrace* trace) const {
  std::vector<TopKResult> results;
  if (query.k == 0 || tree_->size() == 0) return results;
  Stopwatch timer;
  obs::TraceSpan search_span(trace, obs::names::kSpanTopkSearch);
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);
  const double alpha = scorer_->options().alpha;
  uint64_t pops = 0;
  uint64_t expansions = 0;

  std::priority_queue<QueueItem> pq;
  pq.push({1.0, false, 0, tree_->root()});
  while (!pq.empty() && results.size() < query.k) {
    const QueueItem item = pq.top();
    pq.pop();
    ++pops;
    if (item.is_object) {
      results.push_back({item.id, item.score});
      continue;
    }
    tree_->ChargeAccess(item.node, stats);
    ++expansions;
    for (const IurTree::Entry& e : item.node->entries) {
      if (e.is_object()) {
        if (e.id == query.exclude) continue;
        const StObject& obj = dataset_->object(e.id);
        if (query.require_all_terms &&
            !ContainsAllTerms(obj.doc, *query.doc)) {
          continue;
        }
        const double score =
            scorer_->Score(obj.loc, obj.doc, query.loc, *query.doc);
        pq.push({score, true, e.id, nullptr});
      } else {
        if (query.require_all_terms &&
            !ContainsAllTerms(e.summary.uni, *query.doc)) {
          continue;  // some required term appears nowhere in the subtree
        }
        const TextBounds tb = EntryTextBounds(e, qsum, scorer_->text());
        const double upper =
            alpha * scorer_->SpatialSim(MinDistance(query.loc, e.rect)) +
            (1.0 - alpha) * tb.max_sim;
        pq.push({upper, false, 0, e.child});
      }
    }
  }
  const TopKMetrics& metrics = TopKMetrics::Get();
  metrics.queries.Increment();
  metrics.pq_pops.Add(pops);
  metrics.expansions.Add(expansions);
  metrics.latency_ms.Record(timer.ElapsedMillis());
  search_span.AddCount(obs::names::kCountPqPops, pops);
  search_span.AddCount(obs::names::kCountExpansions, expansions);
  return results;
}

std::vector<TopKResult> BruteForceTopK(const Dataset& dataset,
                                       const StScorer& scorer,
                                       const TopKQuery& query) {
  std::vector<TopKResult> all;
  all.reserve(dataset.size());
  for (const StObject& obj : dataset.objects()) {
    if (obj.id == query.exclude) continue;
    if (query.require_all_terms &&
        obj.doc.OverlapCount(*query.doc) != query.doc->size()) {
      continue;
    }
    all.push_back(
        {obj.id, scorer.Score(obj.loc, obj.doc, query.loc, *query.doc)});
  }
  std::sort(all.begin(), all.end(), [](const TopKResult& a, const TopKResult& b) {
    return a.score > b.score || (a.score == b.score && a.id < b.id);
  });
  if (all.size() > query.k) all.resize(query.k);
  return all;
}

}  // namespace rst
