#ifndef RST_IURTREE_ARENA_ARRAY_H_
#define RST_IURTREE_ARENA_ARRAY_H_

#include <cstddef>
#include <new>
#include <utility>

#include "rst/common/check.h"

namespace rst {

/// Fixed-capacity sequence over caller-provided storage — the entry container
/// of arena-allocated tree nodes. The arena co-allocates the element storage
/// with the node in one cache-line-aligned chunk (see NodeArena), so unlike
/// std::vector there is no separate heap allocation, no capacity growth, and
/// no iterator invalidation short of erase/clear: an element's address is
/// stable for its lifetime, which the EXPLAIN entry index relies on.
///
/// Elements are constructed in place on push/emplace and destroyed on
/// erase/clear/destruction; the storage itself is never freed here — it
/// belongs to the arena chunk.
template <typename T>
class ArenaArray {
 public:
  ArenaArray(T* storage, size_t capacity)
      : data_(storage), capacity_(capacity) {}
  ~ArenaArray() { clear(); }

  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void push_back(T&& value) { emplace_back(std::move(value)); }
  void push_back(const T& value) { emplace_back(value); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    RST_DCHECK_LT(size_, capacity_) << "ArenaArray overflow";
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Erases the element at `pos` (a pointer into [begin(), end())),
  /// shifting later elements down — mirrors vector::erase(iterator).
  void erase(T* pos) {
    RST_DCHECK(pos >= begin() && pos < end());
    for (T* p = pos + 1; p != end(); ++p) *(p - 1) = std::move(*p);
    --size_;
    data_[size_].~T();
  }

  void clear() {
    while (size_ > 0) data_[--size_].~T();
  }

 private:
  T* data_;
  size_t size_ = 0;
  size_t capacity_;
};

}  // namespace rst

#endif  // RST_IURTREE_ARENA_ARRAY_H_
