#include "rst/iurtree/node_arena.h"

#include <cstdint>
#include <new>

#include "rst/common/check.h"

namespace rst {

namespace {

constexpr size_t kCacheLine = 64;
/// Slab size target: large enough that slab allocation is noise next to the
/// node construction it amortizes, small enough not to strand memory on tiny
/// trees (one slab still holds hundreds of chunks at default fanout).
constexpr size_t kTargetSlabBytes = size_t{256} * 1024;

size_t AlignUp(size_t n, size_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

}  // namespace

NodeArena::NodeArena(size_t entry_capacity) : entry_capacity_(entry_capacity) {
  static_assert(alignof(IurTree::Node) <= kCacheLine);
  static_assert(sizeof(NodeArena::FreeChunk) <= sizeof(IurTree::Node),
                "free-list link must fit in a destroyed chunk");
  entry_offset_ = AlignUp(sizeof(IurTree::Node), alignof(IurTree::Entry));
  chunk_bytes_ = AlignUp(
      entry_offset_ + entry_capacity_ * sizeof(IurTree::Entry), kCacheLine);
  chunks_per_slab_ = kTargetSlabBytes / chunk_bytes_;
  if (chunks_per_slab_ == 0) chunks_per_slab_ = 1;
  slab_bytes_ = chunks_per_slab_ * chunk_bytes_;
}

NodeArena::~NodeArena() {
  // Owners destroy every node before the arena (IurTree::~IurTree walks the
  // tree); a live node here means its Entry vectors are about to leak.
  RST_DCHECK_EQ(live_nodes_, size_t{0})
      << "NodeArena destroyed with live nodes";
}

void NodeArena::AddSlab() {
  // The + kCacheLine - 1 slack lets the first chunk be aligned manually —
  // make_unique<std::byte[]> only guarantees max_align_t. Keeping the
  // allocation on the standard path (no raw operator new) means sanitizers
  // and the project linter see a plain owned array.
  slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes_ + kCacheLine - 1));
  const auto addr = reinterpret_cast<uintptr_t>(slabs_.back().get());
  bump_ = slabs_.back().get() +
          static_cast<ptrdiff_t>(AlignUp(addr, kCacheLine) - addr);
  bump_remaining_ = chunks_per_slab_;
}

IurTree::Node* NodeArena::Create() {
  std::byte* chunk;
  if (free_list_ != nullptr) {
    chunk = reinterpret_cast<std::byte*>(free_list_);
    free_list_ = free_list_->next;
  } else {
    if (bump_remaining_ == 0) AddSlab();
    chunk = bump_;
    bump_ += chunk_bytes_;
    --bump_remaining_;
  }
  ++live_nodes_;
  auto* entries = reinterpret_cast<IurTree::Entry*>(chunk + entry_offset_);
  return new (chunk) IurTree::Node(entries, entry_capacity_);
}

void NodeArena::Destroy(IurTree::Node* node) {
  RST_DCHECK_GT(live_nodes_, size_t{0});
  node->~Node();
  FreeChunk* chunk = new (static_cast<void*>(node)) FreeChunk{free_list_};
  free_list_ = chunk;
  --live_nodes_;
}

}  // namespace rst
