#include "rst/iurtree/cluster.h"

#include <algorithm>
#include <cmath>

#include "rst/common/rng.h"

namespace rst {

namespace {

/// Dense centroid with cached norm.
struct Centroid {
  std::vector<double> weights;
  double norm = 0.0;

  void Clear() { std::fill(weights.begin(), weights.end(), 0.0); }
  void Add(const TermVector& doc) {
    for (const TermWeight& e : doc.entries()) {
      if (e.term >= weights.size()) weights.resize(e.term + 1, 0.0);
      weights[e.term] += e.weight;
    }
  }
  void Normalize() {
    double n2 = 0.0;
    for (double w : weights) n2 += w * w;
    norm = std::sqrt(n2);
  }
  double Cosine(const TermVector& doc) const {
    if (norm <= 0.0 || doc.NormSquared() <= 0.0) return 0.0;
    double dot = 0.0;
    for (const TermWeight& e : doc.entries()) {
      if (e.term < weights.size()) dot += weights[e.term] * e.weight;
    }
    return dot / (norm * std::sqrt(doc.NormSquared()));
  }
};

}  // namespace

ClusteringResult ClusterDocuments(const std::vector<TermVector>& docs,
                                  const ClusteringOptions& options) {
  ClusteringResult result;
  result.assignment.assign(docs.size(), 0);
  const uint32_t k =
      std::min<uint32_t>(options.num_clusters,
                         std::max<uint32_t>(1, static_cast<uint32_t>(docs.size())));
  result.num_clusters = k;
  if (docs.empty()) return result;

  Rng rng(options.seed);
  std::vector<Centroid> centroids(k);
  // Seed centroids from distinct random documents.
  const auto seeds = rng.SampleWithoutReplacement(docs.size(), k);
  for (uint32_t c = 0; c < k; ++c) {
    centroids[c].Add(docs[seeds[c]]);
    centroids[c].Normalize();
  }

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < docs.size(); ++i) {
      uint32_t best = 0;
      double best_sim = -1.0;
      for (uint32_t c = 0; c < k; ++c) {
        const double sim = centroids[c].Cosine(docs[i]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (Centroid& c : centroids) c.Clear();
    for (size_t i = 0; i < docs.size(); ++i) {
      centroids[result.assignment[i]].Add(docs[i]);
    }
    for (Centroid& c : centroids) c.Normalize();
  }

  // Intra-cluster similarity + optional outlier extraction.
  std::vector<std::pair<double, size_t>> sims(docs.size());
  double total_sim = 0.0;
  for (size_t i = 0; i < docs.size(); ++i) {
    const double sim = centroids[result.assignment[i]].Cosine(docs[i]);
    sims[i] = {sim, i};
    total_sim += sim;
  }
  result.mean_intra_similarity = total_sim / static_cast<double>(docs.size());

  if (options.outlier_threshold > 0.0 && k > 0) {
    std::sort(sims.begin(), sims.end());
    const size_t cap = static_cast<size_t>(
        options.max_outlier_fraction * static_cast<double>(docs.size()));
    const uint32_t outlier_cluster = k;
    for (size_t rank = 0; rank < sims.size() && rank < cap; ++rank) {
      if (sims[rank].first >= options.outlier_threshold) break;
      result.assignment[sims[rank].second] = outlier_cluster;
      ++result.num_outliers;
    }
    if (result.num_outliers > 0) result.num_clusters = k + 1;
  }
  return result;
}

double ClusterEntropy(const std::vector<uint32_t>& cluster_counts) {
  uint64_t total = 0;
  for (uint32_t c : cluster_counts) total += c;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (uint32_t c : cluster_counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace rst
