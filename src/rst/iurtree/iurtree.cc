#include "rst/iurtree/iurtree.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "rst/common/check.h"
#include "rst/common/stopwatch.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/iurtree/node_arena.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"
#include "rst/storage/varint.h"

namespace rst {

namespace {

using ClusterList = std::vector<std::pair<uint32_t, TextSummary>>;

/// Build metrics (`iurtree.*`): published after every bulk load. Handles are
/// cached once; the per-build cost is one O(nodes) walk.
struct BuildMetrics {
  obs::Counter builds;
  obs::Counter nodes_total;
  obs::Counter leaves_total;
  obs::Gauge last_build_ms;
  obs::Gauge last_node_count;
  obs::Gauge parallel_ms;  ///< slab-sort phase of the last bulk load
  obs::HistogramRef fanout;

  static const BuildMetrics& Get() {
    static const BuildMetrics metrics = [] {
      BuildMetrics m;
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      m.builds = registry.GetCounter(obs::names::kIurtreeBuilds);
      m.nodes_total = registry.GetCounter(obs::names::kIurtreeBuildNodes);
      m.leaves_total = registry.GetCounter(obs::names::kIurtreeBuildLeafNodes);
      m.last_build_ms = registry.GetGauge(obs::names::kIurtreeBuildLastMs);
      m.last_node_count = registry.GetGauge(obs::names::kIurtreeBuildLastNodeCount);
      m.parallel_ms = registry.GetGauge(obs::names::kIurtreeBuildParallelMs);
      // Fanout never exceeds max_entries (<= 64 in every configuration used
      // here); linear buckets of width 4 resolve underfull nodes.
      m.fanout = registry.GetHistogram(obs::names::kIurtreeFanout,
                                       obs::HistogramSpec::Linear(4, 4, 16));
      return m;
    }();
    return metrics;
  }
};

ClusterList MergeClusterLists(const ClusterList& a, const ClusterList& b) {
  ClusterList out;
  out.reserve(a.size() + b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back(*ia++);
    } else if (ia == a.end() || ib->first < ia->first) {
      out.push_back(*ib++);
    } else {
      out.push_back({ia->first, TextSummary::Merge(ia->second, ib->second)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace

Rect IurTree::Node::ComputeMbr() const {
  Rect mbr;
  for (const Entry& e : entries) mbr.Extend(e.rect);
  return mbr;
}

IurTree::IurTree(const IurTreeOptions& options)
    : options_(options),
      // +1 entry slot: InsertRec pushes past max_entries before splitting.
      arena_(std::make_unique<NodeArena>(options.max_entries + 1)),
      page_store_(std::make_unique<PageStore>()) {
  RST_CHECK_GE(options_.max_entries, 2 * options_.min_entries)
      << "IurTreeOptions: max_entries must be at least twice min_entries";
  root_ = arena_->Create();
}

IurTree::IurTree(IurTree&& other) noexcept
    : options_(other.options_),
      arena_(std::move(other.arena_)),
      root_(std::exchange(other.root_, nullptr)),
      page_store_(std::move(other.page_store_)),
      size_(std::exchange(other.size_, 0)),
      clustered_(other.clustered_),
      storage_dirty_(other.storage_dirty_) {}

IurTree& IurTree::operator=(IurTree&& other) noexcept {
  if (this == &other) return *this;
  if (arena_ != nullptr && root_ != nullptr) DestroyRecursive(root_);
  options_ = other.options_;
  arena_ = std::move(other.arena_);
  root_ = std::exchange(other.root_, nullptr);
  page_store_ = std::move(other.page_store_);
  size_ = std::exchange(other.size_, 0);
  clustered_ = other.clustered_;
  storage_dirty_ = other.storage_dirty_;
  return *this;
}

IurTree::~IurTree() {
  // arena_ is null exactly when this tree was moved from.
  if (arena_ != nullptr && root_ != nullptr) DestroyRecursive(root_);
}

void IurTree::DestroyRecursive(Node* node) {
  if (!node->leaf) {
    for (Entry& e : node->entries) DestroyRecursive(e.child);
  }
  arena_->Destroy(node);
}

IurTree::Entry IurTree::MakeParentEntry(Node* node) {
  Entry parent;
  parent.rect = node->ComputeMbr();
  for (const Entry& e : node->entries) {
    parent.summary = TextSummary::Merge(parent.summary, e.summary);
    parent.clusters = MergeClusterLists(parent.clusters, e.clusters);
  }
  parent.child = node;
  return parent;
}

namespace {

/// Counts nodes/leaves and records the fanout histogram of a finished tree.
void PublishBuildMetrics(const IurTree& tree, double build_ms) {
  const BuildMetrics& metrics = BuildMetrics::Get();
  uint64_t nodes = 0;
  uint64_t leaves = 0;
  std::vector<const IurTree::Node*> stack = {tree.root()};
  while (!stack.empty()) {
    const IurTree::Node* node = stack.back();
    stack.pop_back();
    ++nodes;
    if (node->leaf) ++leaves;
    metrics.fanout.Record(static_cast<double>(node->entries.size()));
    if (!node->leaf) {
      for (const IurTree::Entry& e : node->entries) {
        stack.push_back(e.child);
      }
    }
  }
  metrics.builds.Increment();
  metrics.nodes_total.Add(nodes);
  metrics.leaves_total.Add(leaves);
  metrics.last_build_ms.Set(build_ms);
  metrics.last_node_count.Set(static_cast<double>(nodes));
}

}  // namespace

IurTree IurTree::Build(std::vector<Item> items, const IurTreeOptions& options,
                       const std::vector<uint32_t>* cluster_of,
                       obs::QueryTrace* trace) {
  Stopwatch build_timer;
  obs::TraceSpan build_span(trace, obs::names::kSpanIurtreeBuild);
  IurTree tree(options);
  tree.clustered_ = cluster_of != nullptr;
  tree.size_ = items.size();

  // The slab y-sorts are the only parallel phase; the slabs are disjoint
  // ranges of the x-sorted level array, so the packed tree is identical at
  // every thread count. The pool is created lazily — pure serial builds
  // (build_threads <= 1) never construct one.
  std::unique_ptr<exec::ThreadPool> pool;
  if (options.build_threads > 1) {
    pool = std::make_unique<exec::ThreadPool>(options.build_threads);
  }
  double parallel_ms = 0.0;

  if (!items.empty()) {
    const size_t cap = options.max_entries;

    if (trace != nullptr) trace->Enter(obs::names::kSpanPack);
    std::vector<Entry> level;
    level.reserve(items.size());
    for (const Item& item : items) {
      Entry e;
      e.rect = Rect::FromPoint(item.loc);
      e.summary = TextSummary::FromDoc(*item.doc);
      e.id = item.id;
      if (cluster_of != nullptr) {
        e.clusters.push_back({(*cluster_of)[item.id], e.summary});
      }
      level.push_back(std::move(e));
    }

    bool leaf_level = true;
    while (level.size() > cap || leaf_level) {
      const size_t n = level.size();
      const size_t num_nodes = (n + cap - 1) / cap;
      const size_t num_slabs = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(num_nodes))));
      const size_t slab_size = ((num_nodes + num_slabs - 1) / num_slabs) * cap;

      std::sort(level.begin(), level.end(), [](const Entry& a, const Entry& b) {
        return a.rect.Center().x < b.rect.Center().x;
      });

      std::vector<std::pair<size_t, size_t>> slabs;
      slabs.reserve((n + slab_size - 1) / slab_size);
      for (size_t slab_begin = 0; slab_begin < n; slab_begin += slab_size) {
        slabs.push_back({slab_begin, std::min(slab_begin + slab_size, n)});
      }
      const auto sort_slab = [&level](const std::pair<size_t, size_t>& slab) {
        std::sort(level.begin() + static_cast<ptrdiff_t>(slab.first),
                  level.begin() + static_cast<ptrdiff_t>(slab.second),
                  [](const Entry& a, const Entry& b) {
                    return a.rect.Center().y < b.rect.Center().y;
                  });
      };
      {
        Stopwatch slab_timer;
        if (pool != nullptr && slabs.size() > 1) {
          pool->ParallelFor(slabs.size(), 1, [&](size_t s, size_t /*worker*/) {
            sort_slab(slabs[s]);
          });
        } else {
          for (const auto& slab : slabs) sort_slab(slab);
        }
        parallel_ms += slab_timer.ElapsedMillis();
      }

      std::vector<Entry> parents;
      for (const auto& [slab_begin, slab_end] : slabs) {
        for (size_t begin = slab_begin; begin < slab_end; begin += cap) {
          const size_t end = std::min(begin + cap, slab_end);
          Node* node = tree.arena_->Create();
          node->leaf = leaf_level;
          for (size_t i = begin; i < end; ++i) {
            node->entries.push_back(std::move(level[i]));
          }
          parents.push_back(MakeParentEntry(node));
        }
      }
      level = std::move(parents);
      leaf_level = false;
      if (level.size() == 1) break;
    }

    // Either way the constructor's placeholder root is replaced; hand its
    // chunk back so single-build trees hold exactly NodeCount() chunks.
    if (level.size() == 1 && level.front().child != nullptr) {
      tree.arena_->Destroy(tree.root_);
      tree.root_ = level.front().child;
      level.front().child = nullptr;
    } else {
      Node* root = tree.arena_->Create();
      root->leaf = false;
      for (Entry& e : level) root->entries.push_back(std::move(e));
      tree.arena_->Destroy(tree.root_);
      tree.root_ = root;
    }
    if (trace != nullptr) trace->Exit();  // pack
  }

  // Single publish point: every path — empty input, single-leaf small input,
  // full STR pack — finalizes and publishes exactly once, here.
  {
    obs::TraceSpan finalize_span(trace, obs::names::kSpanFinalizeStorage);
    tree.FinalizeStorage();
  }
  BuildMetrics::Get().parallel_ms.Set(parallel_ms);
  PublishBuildMetrics(tree, build_timer.ElapsedMillis());
  return tree;
}

IurTree IurTree::BuildFromDataset(const Dataset& dataset,
                                  const IurTreeOptions& options,
                                  const std::vector<uint32_t>* cluster_of,
                                  obs::QueryTrace* trace) {
  std::vector<Item> items;
  items.reserve(dataset.size());
  for (const StObject& obj : dataset.objects()) {
    items.push_back({obj.id, obj.loc, &obj.doc});
  }
  return Build(std::move(items), options, cluster_of, trace);
}

IurTree IurTree::BuildFromUsers(const std::vector<StUser>& users,
                                const IurTreeOptions& options) {
  std::vector<Item> items;
  items.reserve(users.size());
  for (const StUser& u : users) {
    items.push_back({u.id, u.loc, &u.keywords});
  }
  return Build(std::move(items), options, nullptr);
}

void IurTree::SplitNode(Node* node, Node** split_off) {
  std::vector<Entry> entries;
  entries.reserve(node->entries.size());
  for (Entry& e : node->entries) entries.push_back(std::move(e));
  node->entries.clear();
  *split_off = arena_->Create();
  (*split_off)->leaf = node->leaf;

  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Union(entries[i].rect, entries[j].rect).Area() -
                           entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node* group_a = node;
  Node* group_b = *split_off;
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;
  group_a->entries.push_back(std::move(entries[seed_a]));
  group_b->entries.push_back(std::move(entries[seed_b]));
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    if (group_a->entries.size() + remaining == options_.min_entries ||
        group_b->entries.size() + remaining == options_.min_entries) {
      Node* needy = group_a->entries.size() + remaining == options_.min_entries
                        ? group_a
                        : group_b;
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          needy->entries.push_back(std::move(entries[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    size_t pick = 0;
    double best_diff = -1.0;
    double pick_enl_a = 0.0, pick_enl_b = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double enl_a = mbr_a.Enlargement(entries[i].rect);
      const double enl_b = mbr_b.Enlargement(entries[i].rect);
      if (std::abs(enl_a - enl_b) > best_diff) {
        best_diff = std::abs(enl_a - enl_b);
        pick = i;
        pick_enl_a = enl_a;
        pick_enl_b = enl_b;
      }
    }
    Node* target;
    if (pick_enl_a < pick_enl_b) {
      target = group_a;
    } else if (pick_enl_b < pick_enl_a) {
      target = group_b;
    } else {
      target = group_a->entries.size() <= group_b->entries.size() ? group_a
                                                                  : group_b;
    }
    (target == group_a ? mbr_a : mbr_b).Extend(entries[pick].rect);
    target->entries.push_back(std::move(entries[pick]));
    assigned[pick] = true;
    --remaining;
  }
}

struct IurTree::InsertResult {
  Node* split_off = nullptr;
};

IurTree::InsertResult IurTree::InsertRec(Node* node, Entry entry,
                                         size_t node_height) {
  if (node->leaf) {
    node->entries.push_back(std::move(entry));
  } else {
    // Choose the child needing the least enlargement.
    size_t best = 0;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const double enl = node->entries[i].rect.Enlargement(entry.rect);
      const double area = node->entries[i].rect.Area();
      if (i == 0 || enl < best_enlargement ||
          (enl == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enl;
        best_area = area;
      }
    }
    Entry& slot = node->entries[best];
    InsertResult child_result =
        InsertRec(slot.child, std::move(entry), node_height - 1);
    // Refresh the slot from its (possibly split) child.
    Entry refreshed = MakeParentEntry(slot.child);
    refreshed.id = kNoObject;
    node->entries[best] = std::move(refreshed);
    if (child_result.split_off != nullptr) {
      node->entries.push_back(MakeParentEntry(child_result.split_off));
    }
  }
  InsertResult result;
  if (node->entries.size() > options_.max_entries) {
    SplitNode(node, &result.split_off);
  }
  return result;
}

void IurTree::Insert(uint32_t id, Point loc, const TermVector* doc,
                     uint32_t cluster) {
  Entry e;
  e.rect = Rect::FromPoint(loc);
  e.summary = TextSummary::FromDoc(*doc);
  e.id = id;
  if (cluster != kNoCluster) {
    e.clusters.push_back({cluster, e.summary});
    clustered_ = true;
  }
  InsertResult result = InsertRec(root_, std::move(e), height());
  if (result.split_off != nullptr) {
    Node* new_root = arena_->Create();
    new_root->leaf = false;
    new_root->entries.push_back(MakeParentEntry(root_));
    new_root->entries.push_back(MakeParentEntry(result.split_off));
    root_ = new_root;
  }
  ++size_;
  storage_dirty_ = true;
  static const obs::Counter inserts =
      obs::MetricRegistry::Global().GetCounter(obs::names::kIurtreeInserts);
  inserts.Increment();
}

namespace {

/// Recomputes a parent entry's rect/summary/clusters from its child node.
void RefreshEntry(IurTree::Entry* e) {
  e->rect = e->child->ComputeMbr();
  e->summary = TextSummary();
  e->clusters.clear();
  for (const IurTree::Entry& ce : e->child->entries) {
    e->summary = TextSummary::Merge(e->summary, ce.summary);
    e->clusters = MergeClusterLists(e->clusters, ce.clusters);
  }
}

/// Collects all object entries beneath `entry` (moving them out), handing
/// the emptied subtree nodes back to the arena.
void FlattenToObjects(IurTree::Entry entry, NodeArena* arena,
                      std::vector<IurTree::Entry>* out) {
  if (entry.is_object()) {
    out->push_back(std::move(entry));
    return;
  }
  for (IurTree::Entry& ce : entry.child->entries) {
    FlattenToObjects(std::move(ce), arena, out);
  }
  arena->Destroy(entry.child);
}

}  // namespace

bool IurTree::DeleteRec(Node* node, uint32_t id, const Rect& target,
                        std::vector<Entry>* orphans) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id && node->entries[i].rect == target) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.rect.Contains(target)) continue;
    if (!DeleteRec(e.child, id, target, orphans)) continue;
    if (e.child->entries.size() < options_.min_entries) {
      // Condense: re-home the survivors, drop the underfull node.
      for (Entry& ce : e.child->entries) {
        FlattenToObjects(std::move(ce), arena_.get(), orphans);
      }
      arena_->Destroy(e.child);
      node->entries.erase(node->entries.begin() + i);
    } else {
      RefreshEntry(&e);
    }
    return true;
  }
  return false;
}

Status IurTree::Delete(uint32_t id, Point loc) {
  std::vector<Entry> orphans;
  if (!DeleteRec(root_, id, Rect::FromPoint(loc), &orphans)) {
    return Status::NotFound("no such (id, location)");
  }
  --size_;
  // Shrink an internal root down to its single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    Node* old_root = root_;
    root_ = root_->entries.front().child;
    arena_->Destroy(old_root);
  }
  if (!root_->leaf && root_->entries.empty()) {
    arena_->Destroy(root_);
    root_ = arena_->Create();
  }
  for (Entry& orphan : orphans) {
    InsertResult result = InsertRec(root_, std::move(orphan), height());
    if (result.split_off != nullptr) {
      Node* new_root = arena_->Create();
      new_root->leaf = false;
      new_root->entries.push_back(MakeParentEntry(root_));
      new_root->entries.push_back(MakeParentEntry(result.split_off));
      root_ = new_root;
    }
  }
  storage_dirty_ = true;
  static const obs::Counter deletes =
      obs::MetricRegistry::Global().GetCounter(obs::names::kIurtreeDeletes);
  deletes.Increment();
  return Status::Ok();
}

void IurTree::SerializeNode(Node* node) {
  if (!node->leaf) {
    for (Entry& e : node->entries) SerializeNode(e.child);
  }
  // Structural record: what an R-tree page would hold.
  std::string record;
  record.push_back(node->leaf ? 1 : 0);
  PutVarint32(&record, static_cast<uint32_t>(node->entries.size()));
  for (const Entry& e : node->entries) {
    PutDouble(&record, e.rect.min_x);
    PutDouble(&record, e.rect.min_y);
    PutDouble(&record, e.rect.max_x);
    PutDouble(&record, e.rect.max_y);
    PutVarint32(&record, e.id == kNoObject ? 0 : e.id + 1);
    PutVarint32(&record, e.count());
  }
  node->record_handle = page_store_->Write(record);

  // Inverted file: per-term <child, maxw, minw> postings (the MIR-tree
  // content), plus the per-cluster summaries when clustered.
  InvertedFile file;
  for (size_t i = 0; i < node->entries.size(); ++i) {
    const Entry& e = node->entries[i];
    for (const TermWeight& tw : e.summary.uni.entries()) {
      file[tw.term].push_back(
          {static_cast<uint32_t>(i), tw.weight, e.summary.intr.Get(tw.term)});
    }
  }
  std::string payload;
  EncodeInvertedFile(file, &payload);
  if (clustered_) {
    for (const Entry& e : node->entries) {
      PutVarint32(&payload, static_cast<uint32_t>(e.clusters.size()));
      for (const auto& [cluster_id, summary] : e.clusters) {
        PutVarint32(&payload, cluster_id);
        EncodeTextSummary(summary, &payload);
      }
    }
  }
  node->invfile_handle = page_store_->Write(payload);
}

void IurTree::FinalizeStorage() {
  if (!options_.store_payloads) {
    storage_dirty_ = false;
    return;
  }
  page_store_ = std::make_unique<PageStore>();
  SerializeNode(root_);
  storage_dirty_ = false;
}

size_t IurTree::height() const {
  size_t h = 0;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->entries.front().child;
    ++h;
  }
  return h;
}

size_t IurTree::NodeCount() const {
  size_t count = 0;
  std::vector<const Node*> stack = {root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->leaf) {
      for (const Entry& e : node->entries) stack.push_back(e.child);
    }
  }
  return count;
}

uint64_t IurTree::IndexBytes() const { return page_store_->PayloadBytes(); }

void IurTree::ChargeAccess(const Node* node, IoStats* stats) const {
  if (stats == nullptr) return;
  stats->AddNodeRead();
  if (!storage_dirty_ && node->invfile_handle.valid()) {
    stats->AddPayloadRead(node->invfile_handle.bytes);
  }
}

Status IurTree::ReadNodePayload(const Node* node, BufferPool* pool,
                                IoStats* stats, InvertedFile* out) const {
  if (storage_dirty_ || !node->invfile_handle.valid()) {
    return Status::FailedPrecondition("storage not finalized");
  }
  stats->AddNodeRead();
  auto payload = pool->Fetch(node->invfile_handle, stats);
  if (!payload.ok()) return payload.status();
  size_t offset = 0;
  obs::TraceSpan decode_span(pool->trace(), obs::names::kSpanPayloadDecode);
  return DecodeInvertedFile(*payload.value(), &offset, out);
}

namespace {

/// Formats "depth D, entry I" for invariant-violation messages so a failed
/// check names the exact node, not just the rule it broke.
std::string EntryContext(size_t depth, size_t index) {
  return "depth " + std::to_string(depth) + ", entry " + std::to_string(index);
}

/// Structural validity of one term vector: sorted unique term ids,
/// non-negative weights, and the cached squared norm agreeing with a fresh
/// recomputation (the caches are what the similarity kernels actually read,
/// so a stale cache silently skews every bound downstream).
Status CheckVectorWellFormed(const TermVector& v, const std::string& what) {
  const std::vector<TermWeight>& entries = v.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && entries[i - 1].term >= entries[i].term) {
      return Status::Corruption(what + ": term ids not strictly ascending at "
                                "position " + std::to_string(i));
    }
    if (entries[i].weight < 0.0f) {
      return Status::Corruption(what + ": negative weight for term " +
                                std::to_string(entries[i].term));
    }
  }
  if (v.NormSquared() != NormSquaredSpan(entries.data(), entries.size())) {
    return Status::Corruption(what + ": cached norm disagrees with weights");
  }
  return Status::Ok();
}

/// The IUR-tree bracketing contract: the intersection vector must be
/// dominated by the union vector — every intr term present in uni with
/// intr weight <= uni weight. A violation would let MinSim exceed MaxSim
/// and flip prune/report decisions.
Status CheckSummaryDomination(const TextSummary& s, const std::string& what) {
  Status well_formed = CheckVectorWellFormed(s.uni, what + " union");
  if (!well_formed.ok()) return well_formed;
  well_formed = CheckVectorWellFormed(s.intr, what + " intersection");
  if (!well_formed.ok()) return well_formed;
  for (const TermWeight& e : s.intr.entries()) {
    const float uni_weight = s.uni.Get(e.term);
    if (!s.uni.Contains(e.term) || e.weight > uni_weight) {
      return Status::Corruption(
          what + ": intersection weight " + std::to_string(e.weight) +
          " for term " + std::to_string(e.term) +
          " exceeds union weight " + std::to_string(uni_weight));
    }
  }
  if (s.count == 0 && (!s.uni.empty() || !s.intr.empty())) {
    return Status::Corruption(what + ": empty summary carries terms");
  }
  return Status::Ok();
}

}  // namespace

Status IurTree::CheckInvariants(
    const std::function<const TermVector*(uint32_t)>& doc_of) const {
  struct Frame {
    const Node* node;
    size_t depth;
  };
  if (root_ == nullptr) return Status::Corruption("null root");
  size_t leaf_depth = SIZE_MAX;
  uint64_t objects_seen = 0;
  std::vector<Frame> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (node->entries.size() > options_.max_entries) {
      return Status::Corruption("node overflow at depth " +
                                std::to_string(depth) + ": " +
                                std::to_string(node->entries.size()) +
                                " entries, max " +
                                std::to_string(options_.max_entries));
    }
    // Every entry — leaf or internal — must carry a dominated, well-formed
    // summary whose MBR contains nothing outside the parent (checked from
    // the parent side below) and whose cluster list is sorted.
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const Entry& e = node->entries[i];
      const std::string context = EntryContext(depth, i);
      const Status summary_ok =
          CheckSummaryDomination(e.summary, context + " summary");
      if (!summary_ok.ok()) return summary_ok;
      for (size_t c = 0; c < e.clusters.size(); ++c) {
        if (c > 0 && e.clusters[c - 1].first >= e.clusters[c].first) {
          return Status::Corruption(context +
                                    ": cluster ids not strictly ascending");
        }
        const Status cluster_ok = CheckSummaryDomination(
            e.clusters[c].second,
            context + " cluster " + std::to_string(e.clusters[c].first));
        if (!cluster_ok.ok()) return cluster_ok;
      }
    }
    if (node->leaf) {
      if (leaf_depth == SIZE_MAX) leaf_depth = depth;
      if (depth != leaf_depth) {
        return Status::Corruption("unequal leaf depth: " +
                                  std::to_string(depth) + " vs " +
                                  std::to_string(leaf_depth));
      }
      for (size_t i = 0; i < node->entries.size(); ++i) {
        const Entry& e = node->entries[i];
        const std::string context = EntryContext(depth, i);
        if (!e.is_object()) {
          return Status::Corruption(context + ": leaf entry with a child");
        }
        if (e.count() != 1) {
          return Status::Corruption(context + ": leaf entry count " +
                                    std::to_string(e.count()) + " != 1");
        }
        const TermVector* doc = doc_of(e.id);
        if (doc == nullptr) {
          return Status::Corruption(context + ": unknown object id " +
                                    std::to_string(e.id));
        }
        if (!(e.summary.uni == *doc) || !(e.summary.intr == *doc)) {
          return Status::Corruption(context + ": summary of object " +
                                    std::to_string(e.id) +
                                    " differs from its document");
        }
        if (clustered_ && e.clusters.size() != 1) {
          return Status::Corruption(context + ": leaf cluster list size " +
                                    std::to_string(e.clusters.size()) +
                                    " != 1");
        }
        ++objects_seen;
      }
      continue;
    }
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const Entry& e = node->entries[i];
      const std::string context = EntryContext(depth, i);
      if (e.is_object()) {
        return Status::Corruption(context + ": object entry in internal node");
      }
      const Node* child = e.child;
      const Rect child_mbr = child->ComputeMbr();
      if (!(e.rect == child_mbr)) {
        return Status::Corruption(context + ": stale MBR " + e.rect.ToString() +
                                  ", children span " + child_mbr.ToString());
      }
      TextSummary expected;
      ClusterList expected_clusters;
      for (const Entry& ce : child->entries) {
        expected = TextSummary::Merge(expected, ce.summary);
        expected_clusters = MergeClusterLists(expected_clusters, ce.clusters);
      }
      if (!(expected.uni == e.summary.uni) ||
          !(expected.intr == e.summary.intr) ||
          expected.count != e.summary.count) {
        return Status::Corruption(
            context + ": summary is not the merge of its " +
            std::to_string(child->entries.size()) + " children (count " +
            std::to_string(e.summary.count) + ", expected " +
            std::to_string(expected.count) + ")");
      }
      if (expected_clusters.size() != e.clusters.size()) {
        return Status::Corruption(context + ": cluster list size " +
                                  std::to_string(e.clusters.size()) +
                                  ", children merge to " +
                                  std::to_string(expected_clusters.size()));
      }
      uint32_t cluster_total = 0;
      for (size_t c = 0; c < expected_clusters.size(); ++c) {
        if (expected_clusters[c].first != e.clusters[c].first ||
            !(expected_clusters[c].second.uni == e.clusters[c].second.uni) ||
            !(expected_clusters[c].second.intr == e.clusters[c].second.intr) ||
            expected_clusters[c].second.count != e.clusters[c].second.count) {
          return Status::Corruption(
              context + ": stale summary for cluster " +
              std::to_string(e.clusters[c].first));
        }
        cluster_total += e.clusters[c].second.count;
      }
      if (clustered_ && cluster_total != e.count()) {
        return Status::Corruption(
            context + ": cluster counts sum to " +
            std::to_string(cluster_total) + ", entry covers " +
            std::to_string(e.count()) + " objects");
      }
      stack.push_back({child, depth + 1});
    }
  }
  if (objects_seen != size_) {
    return Status::Corruption("tree holds " + std::to_string(objects_seen) +
                              " objects, size() says " +
                              std::to_string(size_));
  }
  return Status::Ok();
}

TextBounds EntryTextBounds(const IurTree::Entry& entry,
                           const TextSummary& other,
                           const TextSimilarity& sim) {
  if (entry.clusters.empty()) {
    return {sim.MinSim(entry.summary, other), sim.MaxSim(entry.summary, other)};
  }
  TextBounds bounds{1.0, 0.0};
  for (const auto& [cluster_id, summary] : entry.clusters) {
    bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(summary, other));
    bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(summary, other));
  }
  return bounds;
}

ExplainIndex::ExplainIndex(const IurTree& tree) {
  // Preorder over entries in node order: parents get smaller ids than their
  // descendants, siblings number left to right — the same order every build
  // of the same tree produces.
  uint64_t next_id = 1;
  struct Frame {
    const IurTree::Node* node;
    uint32_t level;
  };
  std::vector<Frame> stack;
  if (tree.root() != nullptr) stack.push_back({tree.root(), 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    // Children are pushed in reverse so they pop in entry order; preorder ids
    // still only depend on structure either way.
    for (size_t i = frame.node->entries.size(); i-- > 0;) {
      const IurTree::Entry& e = frame.node->entries[i];
      if (!e.is_object()) stack.push_back({e.child, frame.level + 1});
    }
    for (const IurTree::Entry& e : frame.node->entries) {
      info_.emplace(&e, Info{next_id++, frame.level});
    }
  }
}

TextBounds EntryPairTextBounds(const IurTree::Entry& a, const IurTree::Entry& b,
                               const TextSimilarity& sim) {
  if (a.clusters.empty() && b.clusters.empty()) {
    return {sim.MinSim(a.summary, b.summary), sim.MaxSim(a.summary, b.summary)};
  }
  // Treat an unclustered side as one blended cluster.
  const std::vector<std::pair<uint32_t, TextSummary>> blended_a =
      a.clusters.empty()
          ? std::vector<std::pair<uint32_t, TextSummary>>{{0, a.summary}}
          : a.clusters;
  const std::vector<std::pair<uint32_t, TextSummary>> blended_b =
      b.clusters.empty()
          ? std::vector<std::pair<uint32_t, TextSummary>>{{0, b.summary}}
          : b.clusters;
  TextBounds bounds{1.0, 0.0};
  for (const auto& [ca, sa] : blended_a) {
    for (const auto& [cb, sb] : blended_b) {
      bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(sa, sb));
      bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(sa, sb));
    }
  }
  return bounds;
}

TextBounds EntryTextBoundsVsClusters(const TextSummary& a,
                                     const IurTree::Entry& b,
                                     const TextSimilarity& sim) {
  if (b.clusters.empty()) {
    return {sim.MinSim(a, b.summary), sim.MaxSim(a, b.summary)};
  }
  TextBounds bounds{1.0, 0.0};
  for (const auto& [cluster_id, summary] : b.clusters) {
    bounds.min_sim = std::min(bounds.min_sim, sim.MinSim(a, summary));
    bounds.max_sim = std::max(bounds.max_sim, sim.MaxSim(a, summary));
  }
  return bounds;
}

double EntryClusterEntropy(const IurTree::Entry& entry) {
  if (entry.clusters.empty()) return 0.0;
  std::vector<uint32_t> counts;
  counts.reserve(entry.clusters.size());
  for (const auto& [cluster_id, summary] : entry.clusters) {
    counts.push_back(summary.count);
  }
  return ClusterEntropy(counts);
}

}  // namespace rst
