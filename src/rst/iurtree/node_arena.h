#ifndef RST_IURTREE_NODE_ARENA_H_
#define RST_IURTREE_NODE_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "rst/iurtree/iurtree.h"

namespace rst {

/// Slab/bump allocator for IurTree nodes. Each chunk holds one Node header
/// followed by storage for a fixed number of Entry slots (max_entries + 1,
/// the worst case during an insert split), starts on a cache-line boundary,
/// and is carved from a large slab — so a bulk load makes one heap
/// allocation per ~256 KiB of nodes instead of two (node + entry vector) per
/// node, and sibling nodes land adjacent in memory in build order, which is
/// exactly the order the STR-packed tree is traversed.
///
/// Destroy() runs the node's destructor and pushes the chunk onto a free
/// list for reuse by the next Create(); slabs themselves are only released
/// when the arena dies. Not thread-safe — each tree owns one arena and tree
/// mutation is single-threaded (the parallel bulk-load phase only sorts
/// entry ranges; nodes are created serially).
class NodeArena {
 public:
  /// `entry_capacity` is the fixed Entry-slot count of every chunk.
  explicit NodeArena(size_t entry_capacity);
  ~NodeArena();

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Placement-constructs a Node (leaf, no entries) in a fresh or recycled
  /// chunk. The node's entry array points into the same chunk.
  IurTree::Node* Create();

  /// Destroys `node` (running Entry destructors via ArenaArray) and recycles
  /// its chunk. The pointer must come from this arena's Create().
  void Destroy(IurTree::Node* node);

  size_t live_nodes() const { return live_nodes_; }
  size_t entry_capacity() const { return entry_capacity_; }
  size_t chunk_bytes() const { return chunk_bytes_; }
  size_t slab_count() const { return slabs_.size(); }
  /// Total bytes reserved in slabs (≥ live_nodes() * chunk_bytes()).
  size_t allocated_bytes() const { return slabs_.size() * slab_bytes_; }

 private:
  /// Recycled chunks form an intrusive list through their first bytes.
  struct FreeChunk {
    FreeChunk* next;
  };

  void AddSlab();

  size_t entry_capacity_;
  size_t entry_offset_;  ///< byte offset of the Entry storage within a chunk
  size_t chunk_bytes_;   ///< chunk stride, cache-line multiple
  size_t chunks_per_slab_;
  size_t slab_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* bump_ = nullptr;   ///< next unused chunk of the newest slab
  size_t bump_remaining_ = 0;   ///< unused chunks after bump_
  FreeChunk* free_list_ = nullptr;
  size_t live_nodes_ = 0;
};

}  // namespace rst

#endif  // RST_IURTREE_NODE_ARENA_H_
