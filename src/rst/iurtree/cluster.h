#ifndef RST_IURTREE_CLUSTER_H_
#define RST_IURTREE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "rst/text/term_vector.h"

namespace rst {

/// Text clustering for the CIUR-tree (the 2011 paper's cluster-enhanced
/// IUR-tree). Objects are grouped by textual topic with spherical k-means
/// (cosine similarity); nodes then keep per-cluster intersection/union
/// summaries, which stay far tighter than one blended summary because
/// min-weights no longer collapse to zero across unrelated topics.
struct ClusteringOptions {
  uint32_t num_clusters = 8;
  uint32_t max_iterations = 12;
  uint64_t seed = 101;
  /// Outlier extraction (the OE enhancement): objects whose cosine
  /// similarity to their centroid falls below this threshold are moved to a
  /// dedicated outlier cluster so they do not dilute their cluster's
  /// intersection vector. 0 disables extraction.
  double outlier_threshold = 0.0;
  /// At most this fraction of objects may be extracted as outliers.
  double max_outlier_fraction = 0.1;
};

struct ClusteringResult {
  /// Cluster id per input document. Ids are in [0, num_clusters]; the id
  /// `num_clusters` is the outlier cluster (present only with OE).
  std::vector<uint32_t> assignment;
  uint32_t num_clusters = 0;  ///< including the outlier cluster if non-empty
  uint32_t num_outliers = 0;
  double mean_intra_similarity = 0.0;  ///< mean cos(doc, centroid)
};

/// Spherical k-means over weighted document vectors. Deterministic for a
/// fixed seed. Empty documents are assigned to cluster 0.
ClusteringResult ClusterDocuments(const std::vector<TermVector>& docs,
                                  const ClusteringOptions& options);

/// Shannon entropy (nats) of a cluster-count distribution — the TE
/// (text-entropy) expansion priority of DESIGN.md §3.3: textually mixed
/// nodes have high entropy and loose bounds, so they are expanded first.
double ClusterEntropy(const std::vector<uint32_t>& cluster_counts);

}  // namespace rst

#endif  // RST_IURTREE_CLUSTER_H_
