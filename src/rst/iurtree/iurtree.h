#ifndef RST_IURTREE_IURTREE_H_
#define RST_IURTREE_IURTREE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rst/common/geometry.h"
#include "rst/common/status.h"
#include "rst/data/dataset.h"
#include "rst/iurtree/arena_array.h"
#include "rst/storage/buffer_pool.h"
#include "rst/storage/codec.h"
#include "rst/storage/io_stats.h"
#include "rst/storage/page_store.h"
#include "rst/text/similarity.h"

namespace rst {

/// The IUR-tree (Intersection–Union R-tree) of the 2011 RSTkNN paper: an
/// R-tree whose every entry additionally carries a text summary — the
/// per-term maximum (union vector) and minimum (intersection vector) weights
/// over the documents of its subtree, plus the subtree object count.
///
/// The same structure serves three roles in this library:
///  * IUR-tree over objects (2011 core);
///  * MIR-tree (2016): the node text content is materialized as an inverted
///    file of <child, maxw, minw> postings, which is exactly what is
///    serialized into the page store for I/O accounting;
///  * MIUR-tree over users (2016 §7): binary keyword vectors, union and
///    intersection per node, subtree user counts.
///
/// With a clustering assignment supplied at build time the tree becomes the
/// CIUR-tree: every entry keeps per-cluster summaries, giving much tighter
/// text bounds on topic-mixed nodes (see EntryTextBounds).
struct IurTreeOptions {
  size_t max_entries = 32;
  size_t min_entries = 12;  ///< used by dynamic inserts (split fill)
  /// Serialize node records and inverted files into the page store so that
  /// index size is byte-accurate and node accesses can be charged.
  bool store_payloads = true;
  /// Worker threads for the STR bulk-load slab sorts. The slabs are disjoint
  /// ranges of one level array, so the resulting tree is identical at every
  /// thread count. 1 = fully serial (no pool is created).
  size_t build_threads = 1;
};

/// Min/max text-similarity bounds of a node/entry against a query summary.
struct TextBounds {
  double min_sim = 0.0;
  double max_sim = 1.0;
};

class NodeArena;  // rst/iurtree/node_arena.h

class IurTree {
 public:
  static constexpr uint32_t kNoObject = 0xFFFFFFFFu;

  struct Node;

  /// One child slot of a node: either an object (leaf) or a subtree. The
  /// child pointer is non-owning — every Node lives on the tree's NodeArena
  /// and is destroyed explicitly (DestroyRecursive) or with the tree.
  struct Entry {
    Rect rect;
    TextSummary summary;
    /// CIUR-tree: (cluster id, summary) pairs, sorted by cluster id; empty
    /// for a plain IUR-tree.
    std::vector<std::pair<uint32_t, TextSummary>> clusters;
    uint32_t id = kNoObject;  ///< object/user id (leaf entries)
    Node* child = nullptr;    ///< subtree (internal entries), arena-owned

    bool is_object() const { return child == nullptr; }
    uint32_t count() const { return summary.count; }
  };

  /// Tree node. Constructed only by NodeArena::Create, which co-allocates
  /// the entry storage in the same cache-line-aligned arena chunk — one
  /// allocation per node, entries adjacent to the header they belong to.
  struct Node {
    Node(Entry* entry_storage, size_t entry_capacity)
        : entries(entry_storage, entry_capacity) {}

    bool leaf = true;
    ArenaArray<Entry> entries;
    /// Storage handles (valid after the build serializes payloads).
    PageHandle record_handle;
    PageHandle invfile_handle;

    Rect ComputeMbr() const;
  };

  /// An item to index.
  struct Item {
    uint32_t id = 0;
    Point loc;
    const TermVector* doc = nullptr;  ///< must outlive the tree
  };

  /// STR bulk load; summaries are computed bottom-up. If `cluster_of` is
  /// non-null it maps item *ids* to cluster ids and the result is a
  /// CIUR-tree. An optional trace records build-phase spans (pack,
  /// finalize_storage); node counts and the fanout histogram always go to
  /// the global metric registry (`iurtree.*`).
  static IurTree Build(std::vector<Item> items, const IurTreeOptions& options,
                       const std::vector<uint32_t>* cluster_of = nullptr,
                       obs::QueryTrace* trace = nullptr);

  /// Convenience builders. The dataset/users must outlive the tree.
  static IurTree BuildFromDataset(const Dataset& dataset,
                                  const IurTreeOptions& options,
                                  const std::vector<uint32_t>* cluster_of =
                                      nullptr,
                                  obs::QueryTrace* trace = nullptr);
  static IurTree BuildFromUsers(const std::vector<StUser>& users,
                                const IurTreeOptions& options);

  IurTree(IurTree&& other) noexcept;
  IurTree& operator=(IurTree&& other) noexcept;
  ~IurTree();

  /// Dynamic insertion (quadratic split, summaries propagated upward).
  /// Invalidates the serialized payloads until FinalizeStorage() is called
  /// again.
  void Insert(uint32_t id, Point loc, const TermVector* doc,
              uint32_t cluster = kNoCluster);
  static constexpr uint32_t kNoCluster = 0xFFFFFFFFu;

  /// Removes the object `(id, loc)`; NotFound if absent. Underfull nodes are
  /// condensed and their remaining objects re-inserted; intersection/union
  /// summaries stay exact along every touched path (update costs mirror the
  /// IR-tree, as the 2011 paper's cost analysis claims). Invalidates the
  /// serialized payloads until FinalizeStorage().
  Status Delete(uint32_t id, Point loc);

  /// (Re)serializes node records and inverted files into the page store.
  void FinalizeStorage();

  const Node* root() const { return root_; }
  size_t size() const { return size_; }
  size_t height() const;
  size_t NodeCount() const;
  bool clustered() const { return clustered_; }
  /// True when the serialized payloads are in sync with the tree (after a
  /// payload-storing build or FinalizeStorage(), until the next
  /// Insert/Delete). Gates payload re-encoding in frozen::FrozenTree::Freeze.
  bool storage_finalized() const { return !storage_dirty_; }

  /// Total serialized bytes (node records + inverted files).
  uint64_t IndexBytes() const;
  const PageStore& page_store() const { return *page_store_; }
  const NodeArena& arena() const { return *arena_; }

  /// Charges the simulated I/O of opening `node`: one node read plus the
  /// blocks of its inverted file (papers' methodology; DESIGN.md §3.5).
  void ChargeAccess(const Node* node, IoStats* stats) const;

  /// Reads `node`'s serialized inverted file through a buffer pool (real
  /// bytes from the page store; cache hits charge nothing) and decodes it.
  /// This is the full disk path — algorithms use the in-memory entries plus
  /// ChargeAccess for speed, but the storage layer round-trips for real.
  /// Requires FinalizeStorage() to have run; `pool` must wrap page_store().
  Status ReadNodePayload(const Node* node, BufferPool* pool, IoStats* stats,
                         InvertedFile* out) const;

  /// Deep structural validation for tests: MBRs tight, summaries exactly the
  /// merge of children, counts consistent, leaves at equal depth, cluster
  /// summaries partition the blended summary. `doc_of` maps an item id to
  /// its document vector.
  Status CheckInvariants(
      const std::function<const TermVector*(uint32_t)>& doc_of) const;

 private:
  explicit IurTree(const IurTreeOptions& options);

  struct InsertResult;
  InsertResult InsertRec(Node* node, Entry entry, size_t node_height);
  bool DeleteRec(Node* node, uint32_t id, const Rect& target,
                 std::vector<Entry>* orphans);
  void SplitNode(Node* node, Node** split_off);
  static Entry MakeParentEntry(Node* node);
  /// Destroys `node` and its whole subtree back into the arena.
  void DestroyRecursive(Node* node);
  void SerializeNode(Node* node);

  IurTreeOptions options_;
  /// Owns every Node (and its co-allocated entry storage); declared before
  /// root_ so the slabs outlive the pointers into them.
  std::unique_ptr<NodeArena> arena_;
  Node* root_ = nullptr;
  std::unique_ptr<PageStore> page_store_;
  size_t size_ = 0;
  bool clustered_ = false;
  bool storage_dirty_ = true;
};

/// Deterministic numbering of a tree's entries for EXPLAIN diagnostics
/// (rst::obs::ExplainRecorder): a preorder walk assigns every entry a stable
/// id and its tree level (0 = the root's entries, increasing downward; object
/// entries carry their object id separately in the tree itself). Ids depend
/// only on tree structure — never on pointer values — so explain output is
/// byte-reproducible across runs, thread counts, and ASLR.
///
/// The index holds raw Entry pointers: it is invalidated by Insert/Delete on
/// the tree and must be rebuilt. Read-only sharing across concurrent queries
/// is safe (exec::BatchRunner builds one per batch).
class ExplainIndex {
 public:
  struct Info {
    uint64_t id = 0;
    uint32_t level = 0;
  };

  explicit ExplainIndex(const IurTree& tree);

  /// Info for an entry of the indexed tree; {0, 0} for unknown pointers
  /// (id 0 is never assigned — numbering starts at 1).
  Info Lookup(const IurTree::Entry* entry) const {
    auto it = info_.find(entry);
    return it == info_.end() ? Info{} : it->second;
  }

  size_t size() const { return info_.size(); }

 private:
  std::unordered_map<const IurTree::Entry*, Info> info_;
};

/// Text bounds of an entry against a plain summary (e.g. a query document or
/// a super-user). Cluster-aware: with per-cluster summaries the bound is the
/// min/max over clusters, which is tighter than the blended summary's bound.
TextBounds EntryTextBounds(const IurTree::Entry& entry,
                           const TextSummary& other,
                           const TextSimilarity& sim);

/// Text bounds between two entries (cluster-aware on both sides).
TextBounds EntryPairTextBounds(const IurTree::Entry& a,
                               const IurTree::Entry& b,
                               const TextSimilarity& sim);

/// One-sided variant: blends `a` but refines over `b`'s clusters — 
/// O(|b.clusters|) kernel evaluations instead of the full cross product,
/// still a valid (if slightly looser) bracket. The RSTkNN probes use this in
/// the straddle region (DESIGN.md §3.3).
TextBounds EntryTextBoundsVsClusters(const TextSummary& a,
                                     const IurTree::Entry& b,
                                     const TextSimilarity& sim);

/// TE expansion priority: entropy of the entry's cluster-count distribution
/// (0 for unclustered entries).
double EntryClusterEntropy(const IurTree::Entry& entry);

}  // namespace rst

#endif  // RST_IURTREE_IURTREE_H_
