// Experiment C1 (SIGMOD 2011 evaluation design): RSTkNN query cost vs k.
// Compares the precompute baseline against branch-and-bound on the IUR-tree
// and the clustered variants (CIUR, CIUR+OE, CIUR+TE). Reports mean query
// runtime and mean simulated I/O per query.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  CoreParams params;
  PrintTitle("C1: RSTkNN query cost vs k  (|D|=" +
             std::to_string(params.num_objects) +
             ", alpha=" + Fmt(params.alpha, 1) + ", GeoNames-like)");
  PrintHeader({"k", "B_ms", "IUR_ms", "CIUR_ms", "CIUROE_ms", "CIURTE_ms",
               "B_io", "IUR_io", "CIUR_io", "CIURTE_io", "|ans|"});
  for (size_t k : {1, 5, 10, 20, 50}) {
    params.k = k;
    const CorePoint p = RunCorePoint(params);
    PrintRow({FmtInt(k), Fmt(p.baseline.query_ms), Fmt(p.iur.query_ms),
              Fmt(p.ciur.query_ms), Fmt(p.ciur_oe.query_ms),
              Fmt(p.ciur_te.query_ms), Fmt(p.baseline.io, 0),
              Fmt(p.iur.io, 0), Fmt(p.ciur.io, 0), Fmt(p.ciur_te.io, 0),
              FmtInt(p.answer_size)});
  }
  std::printf(
      "\nNote: B (baseline) additionally pays a per-k precompute pass of the\n"
      "whole collection (reported in tbl_core_index_build).\n");
  EmitFigureMetrics("fig_core_vary_k");
  return 0;
}
