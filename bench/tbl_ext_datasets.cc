// Experiment E12 (2016 paper, Table 4): statistics of the generated
// collections, mirroring the columns the paper reports for Flickr and Yelp:
// total objects, total unique terms, average unique terms per object, total
// terms. The substitution targets (DESIGN.md §4): Flickr-like ≈ 7 unique
// terms/object with Zipf tags; Yelp-like = text-heavy long documents.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  using namespace rst;

  PrintTitle("E12/Table 4: dataset statistics of the generators");
  PrintHeader({"dataset", "objects", "uniq_terms", "avg_uniq/o", "total_terms",
               "index_MB"});

  {
    ExtParams params;
    const ExtEnv& env = CachedExtEnv(params);
    const DatasetStatsRow row = ComputeDatasetStats(env.dataset);
    PrintRow({"flickr-like", FmtInt(row.total_objects),
              FmtInt(row.total_unique_terms),
              Fmt(row.avg_unique_terms_per_object, 1),
              FmtInt(row.total_terms),
              Fmt(static_cast<double>(env.tree.IndexBytes()) / (1 << 20))});
  }
  {
    ExtParams params;
    params.yelp = true;
    const ExtEnv& env = CachedExtEnv(params);
    const DatasetStatsRow row = ComputeDatasetStats(env.dataset);
    PrintRow({"yelp-like", FmtInt(row.total_objects),
              FmtInt(row.total_unique_terms),
              Fmt(row.avg_unique_terms_per_object, 1),
              FmtInt(row.total_terms),
              Fmt(static_cast<double>(env.tree.IndexBytes()) / (1 << 20))});
  }
  {
    CoreParams params;
    const CoreEnv& env = CachedCoreEnv(params);
    const DatasetStatsRow row = ComputeDatasetStats(env.dataset);
    PrintRow({"geonames-like", FmtInt(row.total_objects),
              FmtInt(row.total_unique_terms),
              Fmt(row.avg_unique_terms_per_object, 1),
              FmtInt(row.total_terms),
              Fmt(static_cast<double>(env.iur.IndexBytes()) / (1 << 20))});
  }
  EmitFigureMetrics("tbl_ext_datasets");
  return 0;
}
