// SIMD kernel-table comparison: the four balanced sorted-merge kernels
// (dot, overlap, union_max, intersect_min) timed per dispatch level on four
// term distributions — uniform (~10% shared), skewed (8 vs 4096), high
// overlap (~91% shared), and disjoint id ranges. Every pair is first checked
// bitwise-identical across levels (the rst::simd equality contract), so the
// speedup column is pure instruction-set, never a different answer.
//
// This calls the kernel tables from simd::KernelsFor directly: production
// code routes skewed shapes to the shared scalar galloped path before the
// table is consulted, so the skewed row here shows what the balanced kernel
// would do on that shape, not what a query pays (see micro_termvector's
// dispatch rows for the member-path numbers).
//
// Writes BENCH_simd.json (standard env header) into the working directory.

#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "rst/common/file_util.h"
#include "rst/common/rng.h"
#include "rst/common/stopwatch.h"
#include "rst/obs/json.h"
#include "rst/simd/simd.h"

namespace {

using rst::Rng;
using rst::TermId;
using rst::TermVector;
using rst::TermWeight;

constexpr size_t kPairsPerDist = 32;

/// Defeats dead-code elimination of the timed kernel calls.
volatile double g_sink = 0;

struct Dist {
  const char* name;
  size_t a_terms, a_vocab;
  size_t b_terms, b_vocab;
  TermId b_base;  // offset of b's id range (0 = shared range with a)
};

constexpr Dist kDists[] = {
    {"uniform", 512, 5120, 512, 5120, 0},
    {"skewed", 8, 8192, 4096, 8192, 0},
    {"high_overlap", 512, 560, 512, 560, 0},
    {"disjoint", 512, 4096, 512, 4096, 8192},
};

TermVector MakeDoc(Rng* rng, size_t terms, size_t vocab, TermId base) {
  std::vector<TermWeight> entries;
  for (size_t pick : rng->SampleWithoutReplacement(vocab, terms)) {
    entries.push_back({base + static_cast<TermId>(pick),
                       static_cast<float>(rng->Uniform(0.05, 1.0))});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

struct Row {
  std::string dist;
  std::string kernel;
  double scalar_ns = 0;
  double simd_ns = 0;
  double speedup = 1.0;
};

/// Times `op` (one call over every pair) with doubling batches until the
/// measurement is comfortably above timer noise, then keeps the best of
/// three runs at that batch count — on a shared 1-core container a single
/// run can absorb a scheduler/steal spike and report 1.5x the true cost,
/// and the minimum is the standard robust estimator for that noise model.
/// Returns ns per pair-call.
template <typename Op>
double TimeNsPerCall(size_t num_pairs, const Op& op) {
  op();  // warm-up: faults pages, primes caches and the dispatch slot
  size_t batches = 1;
  double best_ms = 0;
  for (;;) {
    rst::Stopwatch timer;
    for (size_t i = 0; i < batches; ++i) op();
    best_ms = timer.ElapsedMillis();
    if (best_ms >= 20.0 || batches >= (size_t{1} << 20)) break;
    batches *= 2;
  }
  for (int rerun = 0; rerun < 2; ++rerun) {
    rst::Stopwatch timer;
    for (size_t i = 0; i < batches; ++i) op();
    best_ms = std::min(best_ms, timer.ElapsedMillis());
  }
  return best_ms * 1e6 / static_cast<double>(batches * num_pairs);
}

}  // namespace

int main() {
  using namespace rst::bench;
  namespace simd = rst::simd;

  const simd::Level detected = simd::DetectedLevel();
  const simd::Kernels& scalar = simd::KernelsFor(simd::Level::kScalar);
  const simd::Kernels& vec = simd::KernelsFor(detected);

  PrintTitle(std::string("micro_simd: balanced merge kernels, scalar vs ") +
             simd::LevelName(detected) + "  (" +
             std::to_string(kPairsPerDist) + " pairs/dist)");
  if (detected == simd::Level::kScalar) {
    std::printf(
        "note: no vector level available on this CPU/build — both columns\n"
        "run the scalar reference and every speedup is ~1x by construction.\n");
  }
  PrintHeader({"dist", "kernel", "scalar_ns", "simd_ns", "speedup"});

  std::vector<Row> rows;
  uint64_t seed = 41;
  for (const Dist& dist : kDists) {
    std::vector<std::pair<TermVector, TermVector>> pairs;
    pairs.reserve(kPairsPerDist);
    size_t max_out = 0;
    for (size_t i = 0; i < kPairsPerDist; ++i) {
      Rng rng(seed++);
      TermVector a = MakeDoc(&rng, dist.a_terms, dist.a_vocab, 0);
      TermVector b = MakeDoc(&rng, dist.b_terms, dist.b_vocab, dist.b_base);
      max_out = std::max(max_out, a.size() + b.size());
      pairs.emplace_back(std::move(a), std::move(b));
    }
    std::vector<TermWeight> out_a(max_out), out_b(max_out);

    // Equality gate: every kernel, every pair, both argument orders.
    for (const auto& [a, b] : pairs) {
      const TermWeight* pa = a.entries().data();
      const TermWeight* pb = b.entries().data();
      for (const auto& [x, nx, y, ny] :
           {std::tuple{pa, a.size(), pb, b.size()},
            std::tuple{pb, b.size(), pa, a.size()}}) {
        const double ds = scalar.dot(x, nx, y, ny);
        const double dv = vec.dot(x, nx, y, ny);
        bool ok = std::memcmp(&ds, &dv, sizeof ds) == 0 &&
                  scalar.overlap(x, nx, y, ny) == vec.overlap(x, nx, y, ny);
        const size_t us = scalar.union_max(x, nx, y, ny, out_a.data());
        const size_t uv = vec.union_max(x, nx, y, ny, out_b.data());
        ok = ok && us == uv &&
             std::memcmp(out_a.data(), out_b.data(),
                         us * sizeof(TermWeight)) == 0;
        const size_t is = scalar.intersect_min(x, nx, y, ny, out_a.data());
        const size_t iv = vec.intersect_min(x, nx, y, ny, out_b.data());
        ok = ok && is == iv &&
             std::memcmp(out_a.data(), out_b.data(),
                         is * sizeof(TermWeight)) == 0;
        if (!ok) {
          std::fprintf(stderr,
                       "FATAL: %s kernels diverge from scalar on dist=%s\n",
                       rst::simd::LevelName(detected), dist.name);
          return 1;
        }
      }
    }

    auto sweep = [&](const char* kernel, const auto& run_scalar,
                     const auto& run_vec) {
      Row row;
      row.dist = dist.name;
      row.kernel = kernel;
      row.scalar_ns = TimeNsPerCall(pairs.size(), run_scalar);
      row.simd_ns = TimeNsPerCall(pairs.size(), run_vec);
      row.speedup = row.simd_ns > 0 ? row.scalar_ns / row.simd_ns : 0.0;
      PrintRow({row.dist, row.kernel, Fmt(row.scalar_ns), Fmt(row.simd_ns),
                Fmt(row.speedup)});
      rows.push_back(row);
    };
    auto each = [&pairs](const auto& fn) {
      double sink = 0;
      for (const auto& [a, b] : pairs) {
        sink += fn(a.entries().data(), a.size(), b.entries().data(), b.size());
      }
      g_sink = g_sink + sink;
    };
    sweep(
        "dot", [&] { each(scalar.dot); }, [&] { each(vec.dot); });
    sweep(
        "overlap", [&] { each(scalar.overlap); },
        [&] { each(vec.overlap); });
    auto each_out = [&pairs, &out_a](const auto& fn) {
      size_t sink = 0;
      for (const auto& [a, b] : pairs) {
        sink += fn(a.entries().data(), a.size(), b.entries().data(), b.size(),
                   out_a.data());
      }
      g_sink = g_sink + static_cast<double>(sink);
    };
    sweep(
        "union_max", [&] { each_out(scalar.union_max); },
        [&] { each_out(vec.union_max); });
    sweep(
        "intersect_min", [&] { each_out(scalar.intersect_min); },
        [&] { each_out(vec.intersect_min); });
  }

  // Member-path rows: the same distributions through the public TermVector
  // operations (adaptive skew dispatch included), one hot pair per
  // distribution — the shape bench/micro_termvector's dispatch rows measure.
  // On the skewed distribution both levels gallop through the shared scalar
  // path, so those rows are expected to tie.
  PrintTitle("micro_simd: member path (TermVector ops, 1 hot pair/dist)");
  PrintHeader({"dist", "op", "scalar_ns", "simd_ns", "speedup"});
  std::vector<Row> member_rows;
  for (const Dist& dist : kDists) {
    Rng rng(seed++);
    const TermVector a = MakeDoc(&rng, dist.a_terms, dist.a_vocab, 0);
    const TermVector b = MakeDoc(&rng, dist.b_terms, dist.b_vocab, dist.b_base);
    auto time_level = [&](simd::Level level, const auto& op) {
      simd::ScopedLevelOverride guard(level);
      return TimeNsPerCall(1, op);
    };
    auto sweep = [&](const char* op_name, const auto& op) {
      Row row;
      row.dist = dist.name;
      row.kernel = op_name;
      row.scalar_ns = time_level(simd::Level::kScalar, op);
      row.simd_ns = time_level(detected, op);
      row.speedup = row.simd_ns > 0 ? row.scalar_ns / row.simd_ns : 0.0;
      PrintRow({row.dist, row.kernel, Fmt(row.scalar_ns), Fmt(row.simd_ns),
                Fmt(row.speedup)});
      member_rows.push_back(row);
    };
    sweep("Dot", [&] { g_sink = g_sink + a.Dot(b); });
    sweep("OverlapCount",
          [&] { g_sink = g_sink + static_cast<double>(a.OverlapCount(b)); });
    sweep("IntersectMin", [&] {
      g_sink = g_sink +
               static_cast<double>(TermVector::IntersectMin(a, b).size());
    });
    sweep("UnionMax", [&] {
      g_sink = g_sink + static_cast<double>(TermVector::UnionMax(a, b).size());
    });
  }

  std::printf(
      "\nNote: rows are bitwise-equality-gated before timing. The skewed row\n"
      "times the balanced kernel on a shape production code routes to the\n"
      "scalar galloped path in every dispatch mode.\n");

  rst::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String("micro_simd");
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("compiled_level");
  writer.String(simd::LevelName(simd::CompiledLevel()));
  writer.Key("detected_level");
  writer.String(simd::LevelName(detected));
  writer.Key("active_level");
  writer.String(simd::LevelName(simd::ActiveLevel()));
  writer.Key("pairs_per_dist");
  writer.Uint(kPairsPerDist);
  writer.Key("series");
  writer.BeginArray();
  for (const Row& row : rows) {
    writer.BeginObject();
    writer.Key("dist");
    writer.String(row.dist);
    writer.Key("kernel");
    writer.String(row.kernel);
    writer.Key("scalar_ns");
    writer.Double(row.scalar_ns);
    writer.Key("simd_ns");
    writer.Double(row.simd_ns);
    writer.Key("speedup");
    writer.Double(row.speedup);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("member_series");
  writer.BeginArray();
  for (const Row& row : member_rows) {
    writer.BeginObject();
    writer.Key("dist");
    writer.String(row.dist);
    writer.Key("op");
    writer.String(row.kernel);
    writer.Key("scalar_ns");
    writer.Double(row.scalar_ns);
    writer.Key("simd_ns");
    writer.Double(row.simd_ns);
    writer.Key("speedup");
    writer.Double(row.speedup);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  if (rst::WriteStringToFileAtomic("BENCH_simd.json", writer.TakeString())
          .ok()) {
    std::printf("\nwrote BENCH_simd.json\n");
  }
  return 0;
}
