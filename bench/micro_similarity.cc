// Microbenchmarks for the similarity kernels — the inner loops of every
// query algorithm in the library.

#include <benchmark/benchmark.h>

#include "rst/common/rng.h"
#include "rst/simd/simd.h"
#include "rst/text/similarity.h"
#include "rst/text/weighting.h"

namespace rst {
namespace {

TermVector MakeDoc(Rng* rng, size_t terms, size_t vocab) {
  std::vector<TermWeight> entries;
  for (size_t pick : rng->SampleWithoutReplacement(vocab, terms)) {
    entries.push_back({static_cast<TermId>(pick),
                       static_cast<float>(rng->Uniform(0.05, 1.0))});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

void BM_Dot(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  const TermVector a = MakeDoc(&rng, n, n * 10);
  const TermVector b = MakeDoc(&rng, n, n * 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
}
BENCHMARK(BM_Dot)->Arg(8)->Arg(64)->Arg(512);

/// The classic two-pointer merge, inlined as the reference the adaptive
/// (galloping) dispatch in TermVector::Dot must beat on skewed inputs.
double TwoPointerDot(const TermVector& a, const TermVector& b) {
  const TermWeight* pa = a.entries().data();
  const TermWeight* ea = pa + a.size();
  const TermWeight* pb = b.entries().data();
  const TermWeight* eb = pb + b.size();
  double dot = 0.0;
  while (pa != ea && pb != eb) {
    if (pa->term < pb->term) {
      ++pa;
    } else if (pb->term < pa->term) {
      ++pb;
    } else {
      dot += static_cast<double>(pa->weight) * pb->weight;
      ++pa;
      ++pb;
    }
  }
  return dot;
}

// Skewed intersection: a short query document (8 terms) against a fat node
// summary (range(0) terms) — the dominant shape in IUR-tree bound work.
void BM_DotSkewed(benchmark::State& state) {
  Rng rng(21);
  const TermVector small = MakeDoc(&rng, 8, 8192);
  const TermVector large =
      MakeDoc(&rng, static_cast<size_t>(state.range(0)), 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Dot(large));
  }
}
BENCHMARK(BM_DotSkewed)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DotSkewedTwoPointer(benchmark::State& state) {
  Rng rng(21);  // same seed: identical inputs as BM_DotSkewed
  const TermVector small = MakeDoc(&rng, 8, 8192);
  const TermVector large =
      MakeDoc(&rng, static_cast<size_t>(state.range(0)), 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoPointerDot(small, large));
  }
}
BENCHMARK(BM_DotSkewedTwoPointer)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ExtendedJaccardSim(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  const TermVector a = MakeDoc(&rng, n, n * 10);
  const TermVector b = MakeDoc(&rng, n, n * 10);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Sim(a, b));
  }
}
BENCHMARK(BM_ExtendedJaccardSim)->Arg(8)->Arg(64)->Arg(512);

void BM_ExtendedJaccardBounds(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  TextSummary a = TextSummary::FromDoc(MakeDoc(&rng, n, n * 10));
  TextSummary b = TextSummary::FromDoc(MakeDoc(&rng, n, n * 10));
  for (int i = 0; i < 8; ++i) {
    a = TextSummary::Merge(a, TextSummary::FromDoc(MakeDoc(&rng, n, n * 10)));
    b = TextSummary::Merge(b, TextSummary::FromDoc(MakeDoc(&rng, n, n * 10)));
  }
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.MaxSim(a, b));
    benchmark::DoNotOptimize(sim.MinSim(a, b));
  }
}
BENCHMARK(BM_ExtendedJaccardBounds)->Arg(8)->Arg(64);

void BM_SumMeasureBounds(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<TermVector> docs;
  for (int i = 0; i < 8; ++i) docs.push_back(MakeDoc(&rng, n, n * 10));
  const std::vector<float> cmax = ComputeCorpusMaxWeights(docs, n * 10);
  TextSummary object;
  for (const TermVector& d : docs) {
    object = TextSummary::Merge(object, TextSummary::FromDoc(d));
  }
  TextSummary user;
  for (int i = 0; i < 4; ++i) {
    std::vector<TermId> terms;
    for (size_t pick : rng.SampleWithoutReplacement(n * 10, 3)) {
      terms.push_back(static_cast<TermId>(pick));
    }
    user = TextSummary::Merge(
        user, TextSummary::FromDoc(TermVector::FromTerms(terms)));
  }
  TextSimilarity sim(TextMeasure::kSum, &cmax);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.MaxSim(object, user));
    benchmark::DoNotOptimize(sim.MinSim(object, user));
  }
}
BENCHMARK(BM_SumMeasureBounds)->Arg(8)->Arg(64);

void BM_UnionMaxIntersectMin(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  const TermVector a = MakeDoc(&rng, n, n * 4);
  const TermVector b = MakeDoc(&rng, n, n * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermVector::UnionMax(a, b));
    benchmark::DoNotOptimize(TermVector::IntersectMin(a, b));
  }
}
BENCHMARK(BM_UnionMaxIntersectMin)->Arg(8)->Arg(64)->Arg(512);

// --- SIMD dispatch rows ----------------------------------------------------
// The composite similarity paths (Sim = Dot + norms; the summary bounds run
// UnionMax/IntersectMin underneath) with dispatch pinned scalar (scalar=1)
// vs the detected level (scalar=0) on identical inputs. Balanced sizes only:
// the skewed shapes gallop through the shared scalar path in every mode and
// are covered by micro_termvector's dist=skewed rows.

void BM_ExtendedJaccardSimDispatch(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  const TermVector a = MakeDoc(&rng, n, n * 2);  // ~50% shared terms
  const TermVector b = MakeDoc(&rng, n, n * 2);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  simd::ScopedLevelOverride guard(state.range(1) != 0 ? simd::Level::kScalar
                                                      : simd::DetectedLevel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Sim(a, b));
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_ExtendedJaccardSimDispatch)
    ->ArgNames({"n", "scalar"})
    ->ArgsProduct({{64, 512}, {0, 1}});

void BM_ExtendedJaccardBoundsDispatch(benchmark::State& state) {
  Rng rng(8);
  const size_t n = static_cast<size_t>(state.range(0));
  TextSummary a = TextSummary::FromDoc(MakeDoc(&rng, n, n * 2));
  TextSummary b = TextSummary::FromDoc(MakeDoc(&rng, n, n * 2));
  for (int i = 0; i < 8; ++i) {
    a = TextSummary::Merge(a, TextSummary::FromDoc(MakeDoc(&rng, n, n * 2)));
    b = TextSummary::Merge(b, TextSummary::FromDoc(MakeDoc(&rng, n, n * 2)));
  }
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  simd::ScopedLevelOverride guard(state.range(1) != 0 ? simd::Level::kScalar
                                                      : simd::DetectedLevel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.MaxSim(a, b));
    benchmark::DoNotOptimize(sim.MinSim(a, b));
  }
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_ExtendedJaccardBoundsDispatch)
    ->ArgNames({"n", "scalar"})
    ->ArgsProduct({{64, 512}, {0, 1}});

void BM_StScore(benchmark::State& state) {
  Rng rng(6);
  const TermVector a = MakeDoc(&rng, 8, 100);
  const TermVector b = MakeDoc(&rng, 8, 100);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, 100.0});
  const Point pa{1, 2}, pb{30, 40};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(pa, a, pb, b));
  }
}
BENCHMARK(BM_StScore);

}  // namespace
}  // namespace rst
