// Experiment E6 (2016 paper, Figure 10): effect of the number of candidate
// locations |L|. The top-k phase is |L|-independent, so only the candidate
// selection methods are reported; runtime grows roughly linearly with |L|
// for both, and the approximation improves slightly with more locations.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E6/Fig10: vary |L| (candidate locations)  (|O|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"|L|", "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t v : {1, 20, 50, 100, 300}) {
    params.num_locations = v;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(v), Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms),
              Fmt(p.ratio), Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_l");
  return 0;
}
