#include "bench_common.h"

#include <cstdlib>
#include <map>
#include <thread>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/exec/batch_runner.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/obs/metrics.h"

namespace rst::bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

constexpr int kColWidth = 13;

}  // namespace

size_t DefaultObjects() {
  static const size_t objects = EnvSize("RST_BENCH_OBJECTS", 20000);
  return objects;
}

size_t Reps() {
  static const size_t reps = EnvSize("RST_BENCH_REPS", 2);
  return reps;
}

size_t Threads() {
  static const size_t threads = EnvSize("RST_BENCH_THREADS", 1);
  return threads;
}

exec::ThreadPool& SharedPool() {
  // rst-lint: allow(raw-new-delete) leaky singleton; pool outlives main
  static auto* pool = new exec::ThreadPool(Threads());
  return *pool;
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintHeader(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%-*s", kColWidth, c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size() * kColWidth; ++i) std::printf("-");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%-*s", kColWidth, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtInt(uint64_t v) { return std::to_string(v); }

void AppendEnvJson(obs::JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("hardware_threads");
  writer->Uint(std::thread::hardware_concurrency());
  // simd_level / force_scalar / build_type: which kernel dispatch and build
  // flavor produced these numbers — captures are not comparable without it.
  obs::AppendProvenanceJson(writer);
  writer->Key("objects");
  writer->Uint(DefaultObjects());
  writer->Key("reps");
  writer->Uint(Reps());
  writer->Key("threads");
  writer->Uint(Threads());
  writer->EndObject();
}

void EmitFigureMetrics(const std::string& figure) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String(figure);
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("metrics");
  obs::MetricRegistry::Global().Snapshot().AppendJson(&writer);
  writer.EndObject();
  const std::string path = figure + ".metrics.json";
  const Status s = WriteStringToFileAtomic(path, writer.TakeString());
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::printf("\n[metrics: %s]\n", path.c_str());
}

const ExtEnv& CachedExtEnv(const ExtParams& params) {
  // rst-lint: allow(raw-new-delete) leaky build cache shared across points
  static auto* cache = new std::map<std::string, ExtEnv*>();
  char key[128];
  std::snprintf(key, sizeof(key), "%zu|%d|%d", params.num_objects,
                static_cast<int>(params.weighting), params.yelp ? 1 : 0);
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  // rst-lint: allow(raw-new-delete) cached for process lifetime, never freed
  auto* env = new ExtEnv{Dataset(), IurTree::Build({}, {})};
  const WeightingOptions weighting{params.weighting, 0.1};
  if (params.yelp) {
    YelpLikeConfig config;
    config.num_objects = params.num_objects / 8 + 1;  // text-heavy => fewer
    env->dataset = GenYelpLike(config, weighting);
  } else {
    FlickrLikeConfig config;
    config.num_objects = params.num_objects;
    env->dataset = GenFlickrLike(config, weighting);
  }
  env->tree = IurTree::BuildFromDataset(env->dataset, {});
  (*cache)[key] = env;
  return *env;
}

ExtPoint RunExtPoint(const ExtParams& params, bool run_selection,
                     bool run_exact) {
  const ExtEnv& env = CachedExtEnv(params);
  TextSimilarity sim(TextMeasure::kSum, &env.dataset.corpus_max());
  StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});
  JointTopKProcessor proc(&env.tree, &env.dataset, &scorer);
  MaxBrstSolver solver(&env.dataset, &scorer);

  ExtPoint point;
  point.ratio = 0.0;  // accumulated below; default 1.0 is for no-selection runs
  const size_t reps = Reps();
  for (size_t rep = 0; rep < reps; ++rep) {
    UserGenConfig ucfg;
    ucfg.num_users = params.num_users;
    ucfg.keywords_per_user = params.ul;
    ucfg.num_unique_keywords = params.uw;
    ucfg.area_extent = params.area;
    ucfg.seed = params.seed + 17 * rep;
    const GeneratedUsers gen = GenUsers(env.dataset, ucfg);
    const double inv_users = 1.0 / static_cast<double>(gen.users.size());

    Stopwatch timer;
    const JointTopKResult baseline = proc.BaselinePerUser(gen.users, params.k);
    point.baseline_mrpu_ms += timer.ElapsedMillis() * inv_users;
    point.baseline_miocpu +=
        static_cast<double>(baseline.io.TotalIos()) * inv_users;

    timer.Restart();
    const JointTopKResult joint = proc.Process(gen.users, params.k);
    point.joint_mrpu_ms += timer.ElapsedMillis() * inv_users;
    point.joint_miocpu += static_cast<double>(joint.io.TotalIos()) * inv_users;

    if (run_selection) {
      MaxBrstQuery query;
      query.locations =
          GenCandidateLocations(gen.area, params.num_locations, ucfg.seed);
      query.keywords = gen.candidate_keywords;
      query.ws = params.ws;
      query.k = params.k;

      size_t exact_cov = 0;
      if (run_exact) {
        timer.Restart();
        const MaxBrstResult exact =
            solver.Solve(gen.users, joint.rsk, query, KeywordSelect::kExact);
        point.exact_sel_ms += timer.ElapsedMillis();
        exact_cov = exact.coverage();
        point.exact_coverage += static_cast<double>(exact_cov);
      }
      timer.Restart();
      const MaxBrstResult approx =
          solver.Solve(gen.users, joint.rsk, query, KeywordSelect::kApprox);
      point.approx_sel_ms += timer.ElapsedMillis();
      if (run_exact) {
        point.ratio += exact_cov == 0
                           ? 1.0
                           : static_cast<double>(approx.coverage()) /
                                 static_cast<double>(exact_cov);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(reps);
  point.baseline_mrpu_ms *= inv;
  point.joint_mrpu_ms *= inv;
  point.baseline_miocpu *= inv;
  point.joint_miocpu *= inv;
  point.exact_sel_ms *= inv;
  point.approx_sel_ms *= inv;
  point.ratio = run_selection && run_exact ? point.ratio * inv : 1.0;
  point.exact_coverage *= inv;
  return point;
}

const CoreEnv& CachedCoreEnv(const CoreParams& params) {
  // rst-lint: allow(raw-new-delete) leaky build cache shared across points
  static auto* cache = new std::map<std::string, CoreEnv*>();
  char key[160];
  std::snprintf(key, sizeof(key), "%zu|%u|%llu|%d", params.num_objects,
                params.num_clusters,
                static_cast<unsigned long long>(params.seed),
                static_cast<int>(params.weighting));
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  // rst-lint: allow(raw-new-delete) cached for process lifetime, never freed
  auto* env = new CoreEnv{Dataset(),
                          {},
                          {},
                          IurTree::Build({}, {}),
                          IurTree::Build({}, {}),
                          IurTree::Build({}, {}),
                          {}};
  GeoNamesLikeConfig config;
  config.num_objects = params.num_objects;
  config.seed = params.seed;
  env->dataset = GenGeoNamesLike(config, {params.weighting, 0.1});

  std::vector<TermVector> docs;
  docs.reserve(env->dataset.size());
  for (const StObject& o : env->dataset.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = params.num_clusters;
  env->clusters = ClusterDocuments(docs, copts).assignment;
  copts.outlier_threshold = 0.15;
  env->clusters_oe = ClusterDocuments(docs, copts).assignment;

  env->iur = IurTree::BuildFromDataset(env->dataset, {});
  env->ciur = IurTree::BuildFromDataset(env->dataset, {}, &env->clusters);
  env->ciur_oe =
      IurTree::BuildFromDataset(env->dataset, {}, &env->clusters_oe);
  env->queries =
      SampleQueryObjects(env->dataset, params.num_queries, params.seed + 3);
  (*cache)[key] = env;
  return *env;
}

CorePoint RunCorePoint(const CoreParams& params, bool run_baseline) {
  const CoreEnv& env = CachedCoreEnv(params);
  TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

  CorePoint point;
  const double inv_q = 1.0 / static_cast<double>(env.queries.size());

  auto run_variant = [&](const IurTree& tree,
                         const RstknnOptions& options) -> CoreVariantPoint {
    CoreVariantPoint variant;
    size_t answers = 0;
    Stopwatch timer;
    if (Threads() > 1) {
      // Batched path: same queries, same per-query algorithm, results keyed
      // by query index — only the wall clock changes.
      std::vector<RstknnQuery> queries;
      queries.reserve(env.queries.size());
      for (ObjectId qid : env.queries) {
        const StObject& q = env.dataset.object(qid);
        queries.push_back({q.loc, &q.doc, params.k, qid});
      }
      const exec::BatchRunner runner(&tree, &env.dataset, &scorer,
                                     &SharedPool());
      timer.Restart();
      const std::vector<RstknnResult> results =
          runner.RunRstknn(queries, options);
      for (const RstknnResult& r : results) {
        variant.io += static_cast<double>(r.stats.io.TotalIos()) * inv_q;
        answers += r.answers.size();
      }
    } else {
      RstknnSearcher searcher(&tree, &env.dataset, &scorer);
      for (ObjectId qid : env.queries) {
        const StObject& q = env.dataset.object(qid);
        const RstknnResult r =
            searcher.Search({q.loc, &q.doc, params.k, qid}, options);
        variant.io += static_cast<double>(r.stats.io.TotalIos()) * inv_q;
        answers += r.answers.size();
      }
    }
    variant.query_ms = timer.ElapsedMillis() * inv_q;
    point.answer_size = answers / env.queries.size();
    return variant;
  };

  point.iur = run_variant(env.iur, {});
  point.ciur = run_variant(env.ciur, {});
  point.ciur_oe = run_variant(env.ciur_oe, {});
  RstknnOptions te;
  te.expand = ExpandPolicy::kTextEntropy;
  point.ciur_te = run_variant(env.ciur_oe, te);

  if (run_baseline) {
    PrecomputeBaseline baseline(&env.iur, &env.dataset, &scorer);
    Stopwatch build_timer;
    baseline.Build(params.k);
    point.baseline_build_ms = build_timer.ElapsedMillis();
    Stopwatch timer;
    for (ObjectId qid : env.queries) {
      const StObject& q = env.dataset.object(qid);
      const RstknnResult r = baseline.Query({q.loc, &q.doc, params.k, qid});
      point.baseline.io += static_cast<double>(r.stats.io.TotalIos()) * inv_q;
    }
    point.baseline.query_ms = timer.ElapsedMillis() * inv_q;
  }
  return point;
}

}  // namespace rst::bench
