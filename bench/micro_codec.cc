// Microbenchmarks for the storage substrate: varint codecs, posting-list
// encode/decode, page store and buffer pool throughput.

#include <benchmark/benchmark.h>

#include "rst/common/rng.h"
#include "rst/storage/buffer_pool.h"
#include "rst/storage/codec.h"
#include "rst/storage/page_store.h"
#include "rst/storage/varint.h"

namespace rst {
namespace {

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Next() % 48);
  for (auto _ : state) {
    std::string buf;
    buf.reserve(values.size() * 10);
    for (uint64_t v : values) PutVarint64(&buf, v);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(2);
  std::string buf;
  for (int i = 0; i < 1024; ++i) PutVarint64(&buf, rng.Next() >> 20);
  for (auto _ : state) {
    size_t offset = 0;
    uint64_t value = 0;
    while (offset < buf.size()) {
      // rst-lint: allow(unchecked-status) benchmark hot loop; decoding valid bytes cannot fail
      (void)GetVarint64(buf, &offset, &value);
      benchmark::DoNotOptimize(value);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintDecode);

InvertedFile MakeInvFile(Rng* rng, size_t terms, size_t postings) {
  InvertedFile file;
  for (size_t t = 0; t < terms; ++t) {
    auto& list = file[static_cast<TermId>(t * 3)];
    for (size_t p = 0; p < postings; ++p) {
      list.push_back({static_cast<uint32_t>(p),
                      static_cast<float>(rng->Uniform(0.1, 1.0)),
                      static_cast<float>(rng->Uniform(0.0, 0.1))});
    }
  }
  return file;
}

void BM_InvertedFileEncode(benchmark::State& state) {
  Rng rng(3);
  const InvertedFile file =
      MakeInvFile(&rng, static_cast<size_t>(state.range(0)), 32);
  for (auto _ : state) {
    std::string buf;
    EncodeInvertedFile(file, &buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_InvertedFileEncode)->Arg(16)->Arg(256);

void BM_InvertedFileDecode(benchmark::State& state) {
  Rng rng(4);
  const InvertedFile file =
      MakeInvFile(&rng, static_cast<size_t>(state.range(0)), 32);
  std::string buf;
  EncodeInvertedFile(file, &buf);
  for (auto _ : state) {
    size_t offset = 0;
    InvertedFile out;
    // rst-lint: allow(unchecked-status) benchmark hot loop; decoding valid bytes cannot fail
    (void)DecodeInvertedFile(buf, &offset, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_InvertedFileDecode)->Arg(16)->Arg(256);

void BM_PageStoreRoundTrip(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    PageStore store;
    const PageHandle h = store.Write(payload);
    std::string out;
    // rst-lint: allow(unchecked-status) benchmark hot loop; reading a just-written page cannot fail
    (void)store.Read(h, &out, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PageStoreRoundTrip)->Arg(512)->Arg(65536);

void BM_BufferPoolHit(benchmark::State& state) {
  PageStore store;
  const PageHandle h = store.Write(std::string(4096, 'y'));
  BufferPool pool(&store, 64);
  IoStats stats;
  // rst-lint: allow(unchecked-status) cache warm-up; the timed Fetch below is checked by storage_test
  (void)pool.Fetch(h, &stats);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Fetch(h, &stats));
  }
}
BENCHMARK(BM_BufferPoolHit);

}  // namespace
}  // namespace rst
