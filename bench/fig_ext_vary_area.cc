// Experiment E5 (2016 paper, Figure 9): effect of the user-area extent.
// Sparser users enlarge the super-user MBR (weaker spatial bounds) but the
// keyword union is unchanged, so joint processing keeps its shared-I/O edge;
// the approximation tracks the exact method better for sparse users.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E5/Fig9: vary user-area extent (world is 100x100)  (|O|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"area", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (double v : {1, 2, 5, 10, 20}) {
    params.area = v;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({Fmt(v, 0), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
              Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
              Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
              Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_area");
  return 0;
}
