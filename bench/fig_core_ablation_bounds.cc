// Ablation (DESIGN.md §3.1): the Cauchy–Schwarz leg of the extended-Jaccard
// node upper bound. With the naive denominator (intersection norms only) the
// bound collapses to 1 on nodes with empty intersections and node-level
// pruning in the RSTkNN branch-and-bound rarely fires; the tightened bound
// is what makes the IUR-tree search practical.

#include "bench_common.h"

#include "rst/common/stopwatch.h"

int main() {
  using namespace rst::bench;
  using namespace rst;
  CoreParams params;
  params.num_objects /= 2;  // the naive bound makes queries very slow
  const CoreEnv& env = CachedCoreEnv(params);

  PrintTitle("Ablation: extended-Jaccard bound tightening  (|D|=" +
             std::to_string(params.num_objects) + ", k=10)");
  PrintHeader({"bound", "query_ms", "entries", "bound_evals", "io"});

  for (EjBoundMode mode : {EjBoundMode::kNaive, EjBoundMode::kCauchySchwarz}) {
    TextSimilarity sim(TextMeasure::kExtendedJaccard, nullptr, mode);
    StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});
    RstknnSearcher searcher(&env.iur, &env.dataset, &scorer);
    double ms = 0, entries = 0, bounds = 0, io = 0;
    Stopwatch timer;
    for (ObjectId qid : env.queries) {
      const StObject& q = env.dataset.object(qid);
      const RstknnResult r = searcher.Search({q.loc, &q.doc, 10, qid});
      entries += static_cast<double>(r.stats.entries_created);
      bounds += static_cast<double>(r.stats.bound_computations);
      io += static_cast<double>(r.stats.io.TotalIos());
    }
    ms = timer.ElapsedMillis() / static_cast<double>(env.queries.size());
    const double inv = 1.0 / static_cast<double>(env.queries.size());
    PrintRow({mode == EjBoundMode::kNaive ? "naive" : "cauchy-schwarz",
              Fmt(ms), Fmt(entries * inv, 0), Fmt(bounds * inv, 0),
              Fmt(io * inv, 0)});
  }
  std::printf("\n(The two variants return identical answer sets; both are\n"
              "verified against the brute-force oracle in the test suite.)\n");
  EmitFigureMetrics("fig_core_ablation_bounds");
  return 0;
}
