// Load driver (DESIGN.md §12.5): replays a batch of RSTkNN queries against
// one prebuilt CIUR-tree in two load models and writes BENCH_profile.json
// with throughput and latency percentiles.
//
//   closed loop — a fixed worker pool (the rst::exec::BatchRunner) drains
//     the query list as fast as it can. Latency is pure service time; the
//     headline number is throughput.
//   open loop — queries ARRIVE on a fixed-rate schedule (RST_LOAD_QPS) and a
//     query's latency is measured from its scheduled arrival, not from when
//     a worker got around to it. A system that can't keep up shows the
//     backlog in its tail percentiles instead of silently slowing the
//     request generator (coordinated omission).
//
// Both modes run with per-phase profiling enabled, so the rstknn.phase.*
// histograms in the emitted registry snapshot attribute where the time went.
//
// Env knobs (on top of bench_common's RST_BENCH_OBJECTS/REPS/THREADS):
//   RST_LOAD_QUERIES — queries replayed per mode (default 64; the sampled
//                      query objects are cycled to reach the count)
//   RST_LOAD_MODE    — closed | open | both (default both)
//   RST_LOAD_QPS     — open-loop arrival rate (default 200)
//
// Flags:
//   --journal-out FILE — capture the load as a replayable workload journal
//     (DESIGN.md §14). The generated dataset is materialized next to it as
//     FILE.data.tsv and referenced from the journal header, so
//     `rst_replay --journal FILE` works standalone. When both load modes
//     run, the closed loop is the one captured (the open loop re-runs the
//     same queries and would duplicate every record).

#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/data/csv.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/metrics.h"
#include "rst/obs/phase_timer.h"

namespace {

using rst::bench::Fmt;
using rst::bench::FmtInt;

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string EnvMode() {
  const char* value = std::getenv("RST_LOAD_MODE");
  if (value == nullptr) return "both";
  const std::string mode(value);
  return mode == "closed" || mode == "open" ? mode : "both";
}

struct ModeResult {
  std::string mode;
  size_t queries = 0;
  size_t workers = 1;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  rst::obs::HistogramSnapshot latency;    // per-query latency
  rst::obs::HistogramSnapshot queue_wait; // dispatch wait (closed loop only)
};

void AppendHistogramSummary(const rst::obs::HistogramSnapshot& h,
                            rst::obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Uint(h.count);
  w->Key("mean_ms");
  w->Double(h.Mean());
  w->Key("p50_ms");
  w->Double(h.Percentile(0.50));
  w->Key("p95_ms");
  w->Double(h.Percentile(0.95));
  w->Key("p99_ms");
  w->Double(h.Percentile(0.99));
  w->Key("max_ms");
  w->Double(h.max);
  w->EndObject();
}

/// Builds the replayed query list by cycling the environment's sampled query
/// objects up to `count`.
std::vector<rst::RstknnQuery> BuildQueries(const rst::bench::CoreEnv& env,
                                           size_t k, size_t count) {
  std::vector<rst::RstknnQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const rst::ObjectId qid = env.queries[i % env.queries.size()];
    const rst::StObject& q = env.dataset.object(qid);
    queries.push_back({q.loc, &q.doc, k, qid});
  }
  return queries;
}

ModeResult RunClosed(const rst::bench::CoreEnv& env, const rst::StScorer& scorer,
                     const std::vector<rst::RstknnQuery>& queries,
                     size_t workers, rst::obs::WorkloadRecorder* journal) {
  rst::exec::ThreadPool pool(workers);
  rst::exec::BatchRunner runner(&env.ciur, &env.dataset, &scorer, &pool);
  runner.set_profiling(true);
  if (journal != nullptr && journal->is_open()) runner.set_journal(journal);

  // Per-query latencies land in the registry (the runner records
  // rstknn.query.ms and exec.batch.queue_wait_ms for every query); the delta
  // against a pre-run snapshot isolates exactly this run.
  const rst::obs::MetricsSnapshot before =
      rst::obs::MetricRegistry::Global().Snapshot();
  rst::exec::BatchStats stats;
  runner.RunRstknn(queries, {}, &stats);
  const rst::obs::MetricsSnapshot delta =
      rst::obs::MetricRegistry::Global().Snapshot().Delta(before);

  ModeResult result;
  result.mode = "closed";
  result.queries = queries.size();
  result.workers = workers;
  result.wall_ms = stats.wall_ms;
  result.throughput_qps = stats.wall_ms > 0
                              ? 1000.0 * static_cast<double>(queries.size()) /
                                    stats.wall_ms
                              : 0.0;
  auto it = delta.histograms.find(rst::obs::names::kRstknnQueryMs);
  if (it != delta.histograms.end()) result.latency = it->second;
  it = delta.histograms.find(rst::obs::names::kExecBatchQueueWaitMs);
  if (it != delta.histograms.end()) result.queue_wait = it->second;
  return result;
}

ModeResult RunOpen(const rst::bench::CoreEnv& env, const rst::StScorer& scorer,
                   const std::vector<rst::RstknnQuery>& queries,
                   size_t workers, double qps,
                   rst::obs::WorkloadRecorder* journal) {
  using Clock = std::chrono::steady_clock;
  const rst::RstknnSearcher searcher(&env.ciur, &env.dataset, &scorer);

  // Arrival-to-completion latency per query, one single-writer histogram per
  // worker, merged after the join.
  std::vector<rst::obs::Histogram> latencies;
  latencies.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    latencies.emplace_back(rst::obs::HistogramSpec::LatencyMs());
  }

  std::atomic<size_t> next{0};
  const Clock::time_point epoch = Clock::now();
  const double interval_s = qps > 0 ? 1.0 / qps : 0.0;
  auto worker_loop = [&](size_t w) {
    rst::ProbeScratch scratch;
    rst::obs::PhaseProfiler profiler;
    rst::RstknnOptions options;
    options.scratch = &scratch;
    options.profiler = &profiler;
    options.publish_metrics = false;  // the phase histograms still publish
    for (;;) {
      // rst-atomics: work-distribution cursor; each index is processed by
      // exactly one claimant and results are published via thread join.
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) break;
      const Clock::time_point arrival =
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(interval_s *
                                                    static_cast<double>(i)));
      // A worker idles until its query's scheduled arrival; a late pickup
      // (all workers busy) skips the wait and the backlog shows up in the
      // measured latency.
      std::this_thread::sleep_until(arrival);
      const rst::RstknnResult result = searcher.Search(queries[i], options);
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - arrival)
              .count();
      latencies[w].Record(latency_ms);
      if (journal != nullptr && journal->is_open() &&
          journal->ShouldSample(i)) {
        // Append serializes outside its lock, so concurrent workers only
        // contend on the final fwrite.
        journal->Append(
            rst::exec::MakeJournalRecord(i, queries[i], result, latency_ms));
      }
    }
  };

  rst::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
  for (std::thread& t : threads) t.join();

  ModeResult result;
  result.mode = "open";
  result.queries = queries.size();
  result.workers = workers;
  result.wall_ms = wall.ElapsedMillis();
  result.throughput_qps =
      result.wall_ms > 0 ? 1000.0 * static_cast<double>(queries.size()) /
                               result.wall_ms
                         : 0.0;
  rst::obs::Histogram merged(rst::obs::HistogramSpec::LatencyMs());
  for (const rst::obs::Histogram& h : latencies) {
    const rst::Status s = merged.Merge(h.snapshot());
    if (!s.ok()) std::fprintf(stderr, "merge: %s\n", s.ToString().c_str());
  }
  result.latency = merged.snapshot();
  return result;
}

/// Journal-header measure token ("ej"/"cos"/"sum" — the vocabulary
/// rstknn_cli's --measure flag and rst_replay consume; rst::TextMeasureName
/// returns the long display names).
const char* MeasureToken(rst::TextMeasure measure) {
  switch (measure) {
    case rst::TextMeasure::kCosine:
      return "cos";
    case rst::TextMeasure::kSum:
      return "sum";
    default:
      return "ej";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rst::bench;

  std::string journal_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      journal_out = argv[++i];
    }
  }

  CoreParams params;
  const CoreEnv& env = CachedCoreEnv(params);
  rst::TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  rst::StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

  const size_t num_queries = EnvSize("RST_LOAD_QUERIES", 64);
  const double qps = static_cast<double>(EnvSize("RST_LOAD_QPS", 200));
  const size_t workers = Threads();
  const std::string mode = EnvMode();
  const std::vector<rst::RstknnQuery> queries =
      BuildQueries(env, params.k, num_queries);

  rst::obs::WorkloadRecorder journal;
  if (!journal_out.empty()) {
    // The generated dataset must outlive this process for the journal to be
    // replayable; materialize it next to the journal and reference it from
    // the header.
    const std::string data_path = journal_out + ".data.tsv";
    rst::Status s = rst::SaveDatasetIds(env.dataset, data_path);
    if (!s.ok()) {
      std::fprintf(stderr, "--journal-out dataset: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    rst::obs::JournalHeader header;
    header.label = "load_driver";
    header.data = data_path;
    header.algo = "probe";
    header.view = "pointer";
    header.tree = "ciur";
    header.measure = MeasureToken(params.measure);
    header.weighting = rst::WeightingName(params.weighting);
    header.alpha = params.alpha;
    header.threads = workers;
    s = journal.Open(journal_out, header);
    if (!s.ok()) {
      std::fprintf(stderr, "--journal-out: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::vector<ModeResult> series;
  if (mode != "open") {
    series.push_back(RunClosed(env, scorer, queries, workers, &journal));
  }
  if (mode != "closed") {
    // Capture the open loop only when the closed loop didn't run — both
    // replay the same query list, and duplicating every record would make
    // the journal ambiguous.
    series.push_back(RunOpen(env, scorer, queries, workers, qps,
                             mode == "open" ? &journal : nullptr));
  }

  PrintTitle("load_driver: RSTkNN under load  (|D|=" +
             std::to_string(env.dataset.size()) + ", " +
             std::to_string(num_queries) + " queries, k=" +
             std::to_string(params.k) + ", " + std::to_string(workers) +
             " worker(s))");
  PrintHeader({"mode", "qps", "p50_ms", "p95_ms", "p99_ms", "max_ms"});
  for (const ModeResult& r : series) {
    PrintRow({r.mode, Fmt(r.throughput_qps, 1), Fmt(r.latency.Percentile(0.50)),
              Fmt(r.latency.Percentile(0.95)), Fmt(r.latency.Percentile(0.99)),
              Fmt(r.latency.max)});
  }
  std::printf(
      "\nNote: closed-loop latency is service time; open-loop latency is\n"
      "measured from each query's scheduled arrival (%.0f qps), so it\n"
      "includes time spent queued behind a saturated worker pool.\n",
      qps);

  rst::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String("load_driver");
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("dataset_objects");
  writer.Uint(env.dataset.size());
  writer.Key("k");
  writer.Uint(params.k);
  writer.Key("open_loop_qps");
  writer.Double(qps);
  writer.Key("series");
  writer.BeginArray();
  for (const ModeResult& r : series) {
    writer.BeginObject();
    writer.Key("mode");
    writer.String(r.mode);
    writer.Key("workers");
    writer.Uint(r.workers);
    writer.Key("queries");
    writer.Uint(r.queries);
    writer.Key("wall_ms");
    writer.Double(r.wall_ms);
    writer.Key("throughput_qps");
    writer.Double(r.throughput_qps);
    writer.Key("latency_ms");
    AppendHistogramSummary(r.latency, &writer);
    if (r.queue_wait.count > 0) {
      writer.Key("queue_wait_ms");
      AppendHistogramSummary(r.queue_wait, &writer);
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  if (rst::WriteStringToFileAtomic("BENCH_profile.json", writer.TakeString())
          .ok()) {
    std::printf("[series: BENCH_profile.json]\n");
  }

  if (journal.is_open()) {
    const uint64_t recorded = journal.recorded();
    const rst::Status s = journal.Close();
    if (!s.ok()) {
      std::fprintf(stderr, "--journal-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[journal: %s (%llu records)]\n", journal_out.c_str(),
                static_cast<unsigned long long>(recorded));
  }

  EmitFigureMetrics("load_driver");
  return 0;
}
