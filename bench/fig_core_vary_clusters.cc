// Experiment C4 (SIGMOD 2011 evaluation design): effect of the CIUR-tree
// cluster count. Too few clusters blend topics (loose intersection vectors);
// too many inflate per-node summary cost. The paper observes a sweet spot in
// the tens.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  PrintTitle("C4: CIUR-tree query cost vs cluster count");
  PrintHeader({"clusters", "CIUR_ms", "CIUROE_ms", "CIURTE_ms", "CIUR_io",
               "CIURTE_io", "index_MB"});
  for (uint32_t m : {1, 2, 4, 8, 16, 32, 64}) {
    CoreParams params;
    params.num_clusters = m;
    const CorePoint p = RunCorePoint(params, /*run_baseline=*/false);
    const CoreEnv& env = CachedCoreEnv(params);
    PrintRow({FmtInt(m), Fmt(p.ciur.query_ms), Fmt(p.ciur_oe.query_ms),
              Fmt(p.ciur_te.query_ms), Fmt(p.ciur.io, 0), Fmt(p.ciur_te.io, 0),
              Fmt(static_cast<double>(env.ciur.IndexBytes()) / (1 << 20))});
  }
  EmitFigureMetrics("fig_core_vary_clusters");
  return 0;
}
