// Sharded scatter-gather RSTkNN: wall time, throughput, and shard-level
// pruning vs shard count on one GeoNames-like corpus. The query workload is
// Zipf-skewed in space — query objects are drawn by a Zipf(1.2) rank sample
// over a spatially sorted candidate set, so the load concentrates in one
// corner of the world the way real check-in/geo-tag workloads concentrate in
// a few cities. That skew is what shard triage monetizes: shards far from
// the hot corner lose the forest-level guaranteed-competitor probe and are
// pruned wholesale, without touching their trees.
//
// alpha = 0.9 (spatial-dominant) deliberately: shard MBRs separate locations,
// not text, so a text-dominant mix re-ranks too many distant objects upward
// for whole-shard pruning to fire (DESIGN.md §15 discusses the trade-off).
//
// Answers are asserted byte-identical across every shard count (sharding
// determinism contract) — the table compares cost, never results.
//
// Besides the console table this writes BENCH_shard.json (figure + env
// header + one series row per shard count). The committed artifact is
// generated with RST_BENCH_OBJECTS=5000000 RST_BENCH_QUERIES=4 — RSTkNN is
// a seconds-per-query problem at millions of objects (consistent with the
// 2011 paper's server-scale numbers), so the 5M sweep trims the query set
// rather than the corpus. At the 20k default the corpus fits one tree's
// cache footprint and the shard win shrinks to triage accounting.
//
// Extra knob (this binary only): RST_BENCH_QUERIES — query-set size
// (default 16).

#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "rst/common/file_util.h"
#include "rst/common/rng.h"
#include "rst/common/stopwatch.h"
#include "rst/obs/json.h"
#include "rst/shard/sharded_index.h"
#include "rst/shard/sharded_search.h"

namespace {

struct Measurement {
  size_t shards = 0;       // requested (== built; N >> 16 here)
  double build_ms = 0;
  double wall_ms = 0;      // whole query set, averaged over reps
  double qps = 0;
  double pruned_frac = 0;  // shards pruned wholesale / shard decisions
  double reported_frac = 0;
  size_t answers = 0;      // summed |RSTkNN| over the query set
};

// Query ids Zipf-skewed toward the low-(x, y) corner: sample a candidate
// pool, sort it spatially, then Zipf-sample ranks so low ranks (corner
// objects) dominate. Deterministic in (dataset, seed).
std::vector<rst::ObjectId> ZipfSkewedQueries(const rst::Dataset& dataset,
                                             size_t count, uint64_t seed) {
  const size_t pool =
      std::min<size_t>(dataset.size(), std::max<size_t>(4096, count));
  std::vector<rst::ObjectId> candidates =
      rst::SampleQueryObjects(dataset, pool, seed);
  std::sort(candidates.begin(), candidates.end(),
            [&](rst::ObjectId a, rst::ObjectId b) {
              const rst::Point& pa = dataset.object(a).loc;
              const rst::Point& pb = dataset.object(b).loc;
              const double ka = pa.x + pa.y;
              const double kb = pb.x + pb.y;
              if (ka != kb) return ka < kb;
              return a < b;
            });
  rst::Rng rng(seed ^ 0xABCDEF);
  const rst::ZipfSampler zipf(candidates.size(), 1.2);
  std::set<rst::ObjectId> picked;
  while (picked.size() < std::min(count, candidates.size())) {
    picked.insert(candidates[zipf.Sample(&rng)]);
  }
  return {picked.begin(), picked.end()};
}

}  // namespace

int main() {
  using namespace rst::bench;

  const size_t num_objects = DefaultObjects();
  const char* queries_env = std::getenv("RST_BENCH_QUERIES");
  const size_t num_queries =
      queries_env != nullptr ? std::strtoull(queries_env, nullptr, 10) : 16;
  const size_t k = 8;
  const double alpha = 0.9;
  const size_t reps = Reps();

  rst::GeoNamesLikeConfig config;
  config.num_objects = num_objects;
  config.seed = 3;
  std::printf("generating %zu objects...\n", num_objects);
  const rst::Dataset dataset =
      rst::GenGeoNamesLike(config, {rst::Weighting::kTfIdf, 0.1});
  rst::TextSimilarity sim(rst::TextMeasure::kExtendedJaccard,
                          &dataset.corpus_max());
  rst::StScorer scorer(&sim, {alpha, dataset.max_dist()});

  std::vector<rst::RstknnQuery> queries;
  for (rst::ObjectId qid : ZipfSkewedQueries(dataset, num_queries, 7)) {
    const rst::StObject& q = dataset.object(qid);
    queries.push_back({q.loc, &q.doc, k, qid});
  }

  rst::shard::ShardOptions shard_options;
  shard_options.tree.store_payloads = false;  // 5M-scale memory honesty

  const std::vector<size_t> shard_counts = {1, 4, 8, 16};
  std::vector<Measurement> series;
  std::vector<std::vector<rst::ObjectId>> baseline;  // per-query, from K=1
  for (const size_t num_shards : shard_counts) {
    shard_options.num_shards = num_shards;
    rst::Stopwatch build_timer;
    const rst::shard::ShardedIndex index = rst::shard::ShardedIndex::Build(
        dataset, shard_options, /*cluster_of=*/nullptr, &SharedPool());
    Measurement m;
    m.shards = num_shards;
    m.build_ms = build_timer.ElapsedMillis();
    const rst::shard::ShardedSearcher searcher(&index, &dataset, &scorer);

    rst::shard::ShardedStats triage;
    rst::Stopwatch timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      m.answers = 0;
      triage = {};
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        rst::RstknnOptions options;
        options.publish_metrics = false;
        rst::shard::ShardedResult res =
            searcher.Search(queries[qi], options, &SharedPool());
        m.answers += res.answers.size();
        triage.Merge(res.shards);
        if (num_shards == shard_counts.front() && rep == 0) {
          baseline.push_back(std::move(res.answers));
        } else if (rep == 0 && res.answers != baseline[qi]) {
          std::fprintf(stderr, "answer mismatch: query %zu at %zu shards\n",
                       qi, num_shards);
          return 1;
        }
      }
    }
    m.wall_ms = timer.ElapsedMillis() / static_cast<double>(reps);
    m.qps = m.wall_ms > 0
                ? 1000.0 * static_cast<double>(queries.size()) / m.wall_ms
                : 0.0;
    const double decisions = static_cast<double>(
        triage.shards_pruned + triage.shards_reported + triage.shards_searched);
    m.pruned_frac =
        decisions > 0 ? static_cast<double>(triage.shards_pruned) / decisions
                      : 0.0;
    m.reported_frac =
        decisions > 0 ? static_cast<double>(triage.shards_reported) / decisions
                      : 0.0;
    series.push_back(m);
    std::printf("  %2zu shards: build %.0f ms, %zu queries in %.1f ms\n",
                num_shards, m.build_ms, queries.size(), m.wall_ms);
  }

  PrintTitle("micro_shard: scatter-gather RSTkNN  (|D|=" +
             std::to_string(dataset.size()) + ", " +
             std::to_string(queries.size()) + " Zipf-skewed queries, k=" +
             std::to_string(k) + ", alpha=" + Fmt(alpha, 1) + ")");
  PrintHeader({"shards", "build_ms", "wall_ms", "qps", "pruned", "reported",
               "|ans|"});
  for (const Measurement& m : series) {
    PrintRow({FmtInt(m.shards), Fmt(m.build_ms), Fmt(m.wall_ms), Fmt(m.qps),
              Fmt(m.pruned_frac), Fmt(m.reported_frac), FmtInt(m.answers)});
  }
  std::printf(
      "\nNote: answers are byte-identical across all rows (sharding\n"
      "determinism contract) — 'pruned' is the fraction of per-query shard\n"
      "decisions resolved by the forest-level probe without opening the\n"
      "shard tree. On a 1-core runner the shard fan-out adds no\n"
      "parallelism; the wall-time delta is pure triage + per-shard tree\n"
      "size, so judge the scatter-gather win on multi-core hardware.\n");

  rst::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String("micro_shard");
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("dataset_objects");
  writer.Uint(dataset.size());
  writer.Key("queries");
  writer.Uint(queries.size());
  writer.Key("k");
  writer.Uint(k);
  writer.Key("alpha");
  writer.Double(alpha);
  writer.Key("series");
  writer.BeginArray();
  for (const Measurement& m : series) {
    writer.BeginObject();
    writer.Key("shards");
    writer.Uint(m.shards);
    writer.Key("build_ms");
    writer.Double(m.build_ms);
    writer.Key("wall_ms");
    writer.Double(m.wall_ms);
    writer.Key("qps");
    writer.Double(m.qps);
    writer.Key("pruned_frac");
    writer.Double(m.pruned_frac);
    writer.Key("reported_frac");
    writer.Double(m.reported_frac);
    writer.Key("answers");
    writer.Uint(m.answers);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  if (rst::WriteStringToFileAtomic("BENCH_shard.json", writer.TakeString())
          .ok()) {
    std::printf("\nwrote BENCH_shard.json\n");
  }
  return 0;
}
