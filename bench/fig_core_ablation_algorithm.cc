// Ablation (DESIGN.md §3.2): the 2011 paper's literal contribution-list
// branch-and-bound vs. this library's probe-based realization of the same
// kNNL/kNNU bounds. Identical answer sets (enforced by the test suite);
// the contribution lists degrade toward all-pairs bound computations, while
// the probes terminate early per candidate.

#include "bench_common.h"

#include "rst/common/stopwatch.h"

int main() {
  using namespace rst::bench;
  using namespace rst;
  CoreParams params;
  params.num_objects /= 2;  // contribution lists are slow
  const CoreEnv& env = CachedCoreEnv(params);
  TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});
  RstknnSearcher searcher(&env.iur, &env.dataset, &scorer);

  PrintTitle("Ablation: contribution lists vs competitor probes  (|D|=" +
             std::to_string(params.num_objects) + ", k=10)");
  PrintHeader({"algorithm", "query_ms", "entries", "bound_evals", "io"});
  for (RstknnAlgorithm algorithm :
       {RstknnAlgorithm::kContributionList, RstknnAlgorithm::kProbe}) {
    RstknnOptions options;
    options.algorithm = algorithm;
    double entries = 0, bounds = 0, io = 0;
    Stopwatch timer;
    for (ObjectId qid : env.queries) {
      const StObject& q = env.dataset.object(qid);
      const RstknnResult r =
          searcher.Search({q.loc, &q.doc, 10, qid}, options);
      entries += static_cast<double>(r.stats.entries_created);
      bounds += static_cast<double>(r.stats.bound_computations);
      io += static_cast<double>(r.stats.io.TotalIos());
    }
    const double inv = 1.0 / static_cast<double>(env.queries.size());
    PrintRow({algorithm == RstknnAlgorithm::kProbe ? "probe"
                                                   : "contrib-list",
              Fmt(timer.ElapsedMillis() * inv), Fmt(entries * inv, 0),
              Fmt(bounds * inv, 0), Fmt(io * inv, 0)});
  }
  EmitFigureMetrics("fig_core_ablation_algorithm");
  return 0;
}
