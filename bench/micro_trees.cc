// Microbenchmarks for the index structures: R-tree operations, IUR-tree
// construction, and top-k search latency.

#include <benchmark/benchmark.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/rtree/rtree.h"
#include "rst/topk/topk.h"

namespace rst {
namespace {

std::vector<std::pair<ObjectId, Rect>> RandomPoints(size_t n) {
  Rng rng(7);
  std::vector<std::pair<ObjectId, Rect>> items;
  for (size_t i = 0; i < n; ++i) {
    items.push_back({static_cast<ObjectId>(i),
                     Rect::FromPoint({rng.Uniform(0, 100),
                                      rng.Uniform(0, 100)})});
  }
  return items;
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto items = RandomPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree;
    for (const auto& [id, rect] : items) tree.Insert(id, rect);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto items = RandomPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = items;
    RTree tree = RTree::BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  RTree tree = RTree::BulkLoad(RandomPoints(50000));
  Rng rng(9);
  for (auto _ : state) {
    const Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    benchmark::DoNotOptimize(
        tree.KnnQuery(p, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

struct TopKEnv {
  Dataset dataset;
  IurTree tree = IurTree::Build({}, {});

  static const TopKEnv& Get() {
    static const TopKEnv* env = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton shared by benchmarks
      auto* e = new TopKEnv();
      FlickrLikeConfig config;
      config.num_objects = 20000;
      e->dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
      e->tree = IurTree::BuildFromDataset(e->dataset, {});
      return e;
    }();
    return *env;
  }
};

void BM_IurTreeBuild(benchmark::State& state) {
  const TopKEnv& env = TopKEnv::Get();
  for (auto _ : state) {
    IurTree tree = IurTree::BuildFromDataset(env.dataset, {});
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * env.dataset.size());
}
BENCHMARK(BM_IurTreeBuild)->Unit(benchmark::kMillisecond);

void BM_TopKSearch(benchmark::State& state) {
  const TopKEnv& env = TopKEnv::Get();
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, env.dataset.max_dist()});
  TopKSearcher searcher(&env.tree, &env.dataset, &scorer);
  Rng rng(11);
  for (auto _ : state) {
    const StObject& q = env.dataset.object(
        static_cast<ObjectId>(rng.UniformInt(uint64_t{env.dataset.size()})));
    TopKQuery query{q.loc, &q.doc, static_cast<size_t>(state.range(0)),
                    IurTree::kNoObject};
    benchmark::DoNotOptimize(searcher.Search(query));
  }
}
BENCHMARK(BM_TopKSearch)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace rst
