// Experiment E10 (2016 paper, Figure 14): the vary-k experiment on the
// Yelp-like collection — far fewer but text-heavy objects (hundreds of
// unique terms each, the long-document regime of the paper's Table 4). The
// trends must be consistent with the Flickr-like results (Figure 5).

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  params.yelp = true;
  PrintTitle("E10/Fig14: vary k on the Yelp-like collection");
  PrintHeader({"k", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t k : {5, 10, 20, 50, 100}) {
    params.k = k;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(k), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
              Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
              Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
              Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_yelp_vary_k");
  return 0;
}
