// Experiment E2 (2016 paper, Figure 6): effect of the spatial/textual
// preference parameter alpha on both phases. Joint-processing cost should
// stay nearly flat (super-user MBR and keyword union do not change), while
// the baseline benefits from higher alpha (the tree groups spatially).

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E2/Fig6: vary alpha  (|O|=" + std::to_string(params.num_objects) +
             ", k=" + std::to_string(params.k) + ")");
  PrintHeader({"alpha", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    params.alpha = alpha;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({Fmt(alpha, 1), Fmt(p.baseline_mrpu_ms, 3),
              Fmt(p.joint_mrpu_ms, 3), Fmt(p.baseline_miocpu, 0),
              Fmt(p.joint_miocpu, 0), Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms),
              Fmt(p.ratio), Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_alpha");
  return 0;
}
