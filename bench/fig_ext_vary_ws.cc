// Experiment E7 (2016 paper, Figure 11): effect of the keyword budget w_s.
// The exact method enumerates C(|W|, w_s) combinations and blows up with
// w_s; the greedy method stays near-linear. Coverage grows quickly with w_s
// and the approximation ratio dips mid-range, recovering once coverage
// saturates (the paper's observation for w_s > 3).

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E7/Fig11: vary ws (keyword budget)  (|O|=" +
             std::to_string(params.num_objects) +
             ", |W|=" + std::to_string(params.uw) + ")");
  PrintHeader({"ws", "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t v : {1, 2, 3, 4, 5, 6}) {
    params.ws = v;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(v), Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms),
              Fmt(p.ratio), Fmt(p.exact_coverage, 1)});
  }
  // The exact method is impractical beyond this point (C(20,8) ≈ 1.3e5
  // combinations per location); the greedy keeps going.
  for (size_t v : {7, 8}) {
    params.ws = v;
    const ExtPoint p = RunExtPoint(params, /*run_selection=*/true,
                                   /*run_exact=*/false);
    PrintRow({FmtInt(v), "-", Fmt(p.approx_sel_ms), "-", "-"});
  }
  EmitFigureMetrics("fig_ext_vary_ws");
  return 0;
}
