// Microbenchmarks for the adaptive TermVector set kernels on skewed inputs —
// the shape the RSTkNN hot path actually sees (a short query document probed
// against fat node-summary vectors). Each adaptive kernel is paired with an
// inline classic two-pointer reference so the galloping win is measured
// against the exact code it replaced, in the same binary and flags.

#include <benchmark/benchmark.h>

#include <cstring>

#include "rst/common/rng.h"
#include "rst/simd/simd.h"
#include "rst/text/term_vector.h"

namespace rst {
namespace {

TermVector MakeDoc(Rng* rng, size_t terms, size_t vocab) {
  std::vector<TermWeight> entries;
  for (size_t pick : rng->SampleWithoutReplacement(vocab, terms)) {
    entries.push_back({static_cast<TermId>(pick),
                       static_cast<float>(rng->Uniform(0.05, 1.0))});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

/// The pre-galloping linear merge, kept verbatim as the baseline.
double LinearDot(const TermVector& a, const TermVector& b) {
  const TermWeight* pa = a.entries().data();
  const TermWeight* ea = pa + a.size();
  const TermWeight* pb = b.entries().data();
  const TermWeight* eb = pb + b.size();
  double dot = 0.0;
  while (pa != ea && pb != eb) {
    if (pa->term < pb->term) {
      ++pa;
    } else if (pb->term < pa->term) {
      ++pb;
    } else {
      dot += static_cast<double>(pa->weight) * pb->weight;
      ++pa;
      ++pb;
    }
  }
  return dot;
}

size_t LinearOverlap(const TermVector& a, const TermVector& b) {
  const TermWeight* pa = a.entries().data();
  const TermWeight* ea = pa + a.size();
  const TermWeight* pb = b.entries().data();
  const TermWeight* eb = pb + b.size();
  size_t n = 0;
  while (pa != ea && pb != eb) {
    if (pa->term < pb->term) {
      ++pa;
    } else if (pb->term < pa->term) {
      ++pb;
    } else {
      ++n;
      ++pa;
      ++pb;
    }
  }
  return n;
}

// state.range(0) = small side, state.range(1) = large side. The interesting
// rows are the skewed ones (8 vs 512/4096); the balanced row checks that the
// adaptive dispatch does not regress the linear case it falls back to.
void SkewArgs(benchmark::internal::Benchmark* b) {
  b->Args({64, 64})->Args({8, 512})->Args({8, 4096})->Args({3, 4096});
}

void BM_DotAdaptive(benchmark::State& state) {
  Rng rng(11);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) benchmark::DoNotOptimize(a.Dot(b));
}
BENCHMARK(BM_DotAdaptive)->Apply(SkewArgs);

void BM_DotLinearRef(benchmark::State& state) {
  Rng rng(11);  // same seed: identical inputs as the adaptive row
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) benchmark::DoNotOptimize(LinearDot(a, b));
}
BENCHMARK(BM_DotLinearRef)->Apply(SkewArgs);

void BM_OverlapAdaptive(benchmark::State& state) {
  Rng rng(12);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) benchmark::DoNotOptimize(a.OverlapCount(b));
}
BENCHMARK(BM_OverlapAdaptive)->Apply(SkewArgs);

void BM_OverlapLinearRef(benchmark::State& state) {
  Rng rng(12);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) benchmark::DoNotOptimize(LinearOverlap(a, b));
}
BENCHMARK(BM_OverlapLinearRef)->Apply(SkewArgs);

// Span-kernel rows: the (const TermWeight*, size_t) overloads the frozen
// flat-layout index calls on pool slices. The member methods delegate to
// these same kernels, so each row first asserts bit-exact agreement — the
// benchmark doubles as the span/vector equivalence check.
void BM_DotSpan(benchmark::State& state) {
  Rng rng(11);  // same seed: identical inputs as BM_DotAdaptive
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  if (DotSpan(a.entries().data(), a.size(), b.entries().data(), b.size()) !=
      a.Dot(b)) {
    state.SkipWithError("DotSpan diverged from TermVector::Dot");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DotSpan(a.entries().data(), a.size(), b.entries().data(), b.size()));
  }
}
BENCHMARK(BM_DotSpan)->Apply(SkewArgs);

void BM_OverlapSpan(benchmark::State& state) {
  Rng rng(12);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  if (OverlapCountSpan(a.entries().data(), a.size(), b.entries().data(),
                       b.size()) != a.OverlapCount(b)) {
    state.SkipWithError("OverlapCountSpan diverged from OverlapCount");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverlapCountSpan(a.entries().data(), a.size(),
                                              b.entries().data(), b.size()));
  }
}
BENCHMARK(BM_OverlapSpan)->Apply(SkewArgs);

void BM_NormSquaredSpan(benchmark::State& state) {
  Rng rng(16);
  const TermVector a = MakeDoc(&rng, state.range(1), 8192);
  if (NormSquaredSpan(a.entries().data(), a.size()) != a.NormSquared()) {
    state.SkipWithError("NormSquaredSpan diverged from NormSquared");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormSquaredSpan(a.entries().data(), a.size()));
  }
}
BENCHMARK(BM_NormSquaredSpan)->Apply(SkewArgs);

void BM_IntersectMinSkewed(benchmark::State& state) {
  Rng rng(13);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermVector::IntersectMin(a, b));
  }
}
BENCHMARK(BM_IntersectMinSkewed)->Apply(SkewArgs);

void BM_UnionMaxSkewed(benchmark::State& state) {
  Rng rng(14);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermVector::UnionMax(a, b));
  }
}
BENCHMARK(BM_UnionMaxSkewed)->Apply(SkewArgs);

void BM_RestrictSkewed(benchmark::State& state) {
  Rng rng(15);
  const TermVector a = MakeDoc(&rng, state.range(0), 8192);
  const TermVector b = MakeDoc(&rng, state.range(1), 8192);
  for (auto _ : state) benchmark::DoNotOptimize(b.Restrict(a));
}
BENCHMARK(BM_RestrictSkewed)->Apply(SkewArgs);

// --- SIMD dispatch rows ----------------------------------------------------
// The same member kernels with dispatch pinned via simd::ScopedLevelOverride:
// scalar=0 rows run the detected level (AVX2 here, NEON on arm64), scalar=1
// rows pin the scalar reference on identical inputs. Each row first asserts
// the two levels agree bitwise — the bench doubles as an equality check.
//
// dist arg: 0=uniform (512v512, ~10% shared), 1=skewed (8v4096 — gallops in
// every dispatch mode, so its rows should tie), 2=high-overlap (512v512,
// ~91% shared), 3=disjoint (512v512, separated id ranges — the vector
// block screen's best case).

TermVector MakeDocOffset(Rng* rng, size_t terms, size_t vocab, TermId base) {
  std::vector<TermWeight> entries;
  for (size_t pick : rng->SampleWithoutReplacement(vocab, terms)) {
    entries.push_back({base + static_cast<TermId>(pick),
                       static_cast<float>(rng->Uniform(0.05, 1.0))});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

const char* DistName(int64_t dist) {
  switch (dist) {
    case 1: return "skewed";
    case 2: return "high_overlap";
    case 3: return "disjoint";
    default: return "uniform";
  }
}

std::pair<TermVector, TermVector> MakeDistPair(int64_t dist, uint64_t seed) {
  Rng rng(seed);
  switch (dist) {
    case 1:
      return {MakeDocOffset(&rng, 8, 8192, 0),
              MakeDocOffset(&rng, 4096, 8192, 0)};
    case 2:  // 512 draws from a 560-term vocab: ~91% expected shared terms
      return {MakeDocOffset(&rng, 512, 560, 0),
              MakeDocOffset(&rng, 512, 560, 0)};
    case 3:
      return {MakeDocOffset(&rng, 512, 4096, 0),
              MakeDocOffset(&rng, 512, 4096, 8192)};
    default:
      return {MakeDocOffset(&rng, 512, 5120, 0),
              MakeDocOffset(&rng, 512, 5120, 0)};
  }
}

void DispatchArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"dist", "scalar"});
  b->ArgsProduct({{0, 1, 2, 3}, {0, 1}});
}

simd::Level RowLevel(const benchmark::State& state) {
  return state.range(1) != 0 ? simd::Level::kScalar : simd::DetectedLevel();
}

bool SameEntries(const TermVector& x, const TermVector& y) {
  return x.size() == y.size() &&
         std::memcmp(x.entries().data(), y.entries().data(),
                     x.size() * sizeof(TermWeight)) == 0;
}

void BM_DotDispatch(benchmark::State& state) {
  const auto [a, b] = MakeDistPair(state.range(0), 31);
  double expected;
  {
    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    expected = a.Dot(b);
  }
  simd::ScopedLevelOverride guard(RowLevel(state));
  const double actual = a.Dot(b);
  if (std::memcmp(&expected, &actual, sizeof expected) != 0) {
    state.SkipWithError("Dot not bitwise-identical across dispatch levels");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.Dot(b));
  state.SetLabel(std::string(DistName(state.range(0))) + "/" +
                 simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_DotDispatch)->Apply(DispatchArgs);

void BM_OverlapDispatch(benchmark::State& state) {
  const auto [a, b] = MakeDistPair(state.range(0), 32);
  size_t expected;
  {
    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    expected = a.OverlapCount(b);
  }
  simd::ScopedLevelOverride guard(RowLevel(state));
  if (a.OverlapCount(b) != expected) {
    state.SkipWithError("OverlapCount diverged across dispatch levels");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.OverlapCount(b));
  state.SetLabel(std::string(DistName(state.range(0))) + "/" +
                 simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_OverlapDispatch)->Apply(DispatchArgs);

void BM_IntersectMinDispatch(benchmark::State& state) {
  const auto [a, b] = MakeDistPair(state.range(0), 33);
  TermVector expected;
  {
    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    expected = TermVector::IntersectMin(a, b);
  }
  simd::ScopedLevelOverride guard(RowLevel(state));
  if (!SameEntries(TermVector::IntersectMin(a, b), expected)) {
    state.SkipWithError("IntersectMin diverged across dispatch levels");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermVector::IntersectMin(a, b));
  }
  state.SetLabel(std::string(DistName(state.range(0))) + "/" +
                 simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_IntersectMinDispatch)->Apply(DispatchArgs);

void BM_UnionMaxDispatch(benchmark::State& state) {
  const auto [a, b] = MakeDistPair(state.range(0), 34);
  TermVector expected;
  {
    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    expected = TermVector::UnionMax(a, b);
  }
  simd::ScopedLevelOverride guard(RowLevel(state));
  if (!SameEntries(TermVector::UnionMax(a, b), expected)) {
    state.SkipWithError("UnionMax diverged across dispatch levels");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(TermVector::UnionMax(a, b));
  state.SetLabel(std::string(DistName(state.range(0))) + "/" +
                 simd::LevelName(simd::ActiveLevel()));
}
BENCHMARK(BM_UnionMaxDispatch)->Apply(DispatchArgs);

}  // namespace
}  // namespace rst
