// Experiment C3 (SIGMOD 2011 evaluation design): RSTkNN scalability in |D|.
// The branch-and-bound variants should scale sub-linearly (whole subtrees
// prune/report), while the baseline's scan-based query grows linearly (and
// its precompute pass, reported separately, is far worse).

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  CoreParams base;
  const size_t unit = base.num_objects / 4;  // 5k ladder at the default 20k
  PrintTitle("C3: RSTkNN scalability vs |D|");
  PrintHeader({"|D|", "B_ms", "IUR_ms", "CIUR_ms", "CIURTE_ms", "B_io",
               "IUR_io", "CIUR_io", "|ans|"});
  for (size_t mult : {1, 2, 4, 8}) {
    CoreParams params = base;
    params.num_objects = unit * mult;
    // The baseline precompute is quadratic-ish; cap it at the smaller sizes.
    const bool run_baseline = mult <= 4;
    const CorePoint p = RunCorePoint(params, run_baseline);
    PrintRow({FmtInt(params.num_objects),
              run_baseline ? Fmt(p.baseline.query_ms) : "-",
              Fmt(p.iur.query_ms), Fmt(p.ciur.query_ms),
              Fmt(p.ciur_te.query_ms),
              run_baseline ? Fmt(p.baseline.io, 0) : "-", Fmt(p.iur.io, 0),
              Fmt(p.ciur.io, 0), FmtInt(p.answer_size)});
  }
  EmitFigureMetrics("fig_core_vary_size");
  return 0;
}
