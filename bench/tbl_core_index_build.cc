// Experiment C5 (SIGMOD 2011 evaluation design): index construction cost and
// size for every structure, plus the baseline's precompute pass — the cost
// the branch-and-bound algorithms avoid entirely.

#include "bench_common.h"

#include "rst/common/stopwatch.h"
#include "rst/rtree/rtree.h"

int main() {
  using namespace rst::bench;
  using namespace rst;
  CoreParams params;
  const CoreEnv& env = CachedCoreEnv(params);
  TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

  PrintTitle("C5: index construction time and size  (|D|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"structure", "build_ms", "size_MB", "nodes", "height"});

  {
    Stopwatch timer;
    std::vector<std::pair<ObjectId, Rect>> items;
    for (const StObject& o : env.dataset.objects()) {
      items.push_back({o.id, Rect::FromPoint(o.loc)});
    }
    const RTree rtree = RTree::BulkLoad(std::move(items));
    PrintRow({"rtree", Fmt(timer.ElapsedMillis()), "-",
              FmtInt(rtree.NodeCount()), FmtInt(rtree.height())});
  }
  {
    Stopwatch timer;
    const IurTree iur = IurTree::BuildFromDataset(env.dataset, {});
    PrintRow({"iur-tree", Fmt(timer.ElapsedMillis()),
              Fmt(static_cast<double>(iur.IndexBytes()) / (1 << 20)),
              FmtInt(iur.NodeCount()), FmtInt(iur.height())});
  }
  {
    Stopwatch timer;
    std::vector<TermVector> docs;
    for (const StObject& o : env.dataset.objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = params.num_clusters;
    const ClusteringResult clusters = ClusterDocuments(docs, copts);
    const double cluster_ms = timer.ElapsedMillis();
    timer.Restart();
    const IurTree ciur =
        IurTree::BuildFromDataset(env.dataset, {}, &clusters.assignment);
    PrintRow({"ciur-tree", Fmt(cluster_ms + timer.ElapsedMillis()),
              Fmt(static_cast<double>(ciur.IndexBytes()) / (1 << 20)),
              FmtInt(ciur.NodeCount()), FmtInt(ciur.height())});
    std::printf("  (text clustering alone: %s ms, %u clusters)\n",
                Fmt(cluster_ms).c_str(), params.num_clusters);
  }
  {
    Stopwatch timer;
    PrecomputeBaseline baseline(&env.iur, &env.dataset, &scorer);
    IoStats io;
    baseline.Build(params.k, &io);
    PrintRow({"B-precompute", Fmt(timer.ElapsedMillis()), "-", "-", "-"});
    std::printf("  (precompute I/O: %llu simulated I/Os for k=%zu)\n",
                static_cast<unsigned long long>(io.TotalIos()), params.k);
  }
  EmitFigureMetrics("tbl_core_index_build");
  return 0;
}
