// Batched RSTkNN throughput: a serial per-query loop vs the
// rst::exec::BatchRunner at 1/2/4/8 threads, all over one shared read-only
// CIUR-tree. The batch path runs the identical per-query algorithm (answers
// are byte-identical by the determinism contract), so any delta is pure
// execution-model overhead or parallel speedup.
//
// Besides the console table this writes BENCH_batch.json into the working
// directory: the measured series plus the host core count, because speedup
// numbers are meaningless without knowing how many cores backed them.

#include "bench_common.h"

#include <thread>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/obs/json.h"

namespace {

struct Measurement {
  std::string mode;
  size_t threads = 1;
  double wall_ms = 0;
  double speedup = 1.0;
  size_t answers = 0;
};

}  // namespace

int main() {
  using namespace rst::bench;
  using rst::exec::BatchRunner;
  using rst::exec::ThreadPool;

  CoreParams params;
  params.num_queries = 32;  // enough per-query work to spread across workers
  const CoreEnv& env = CachedCoreEnv(params);
  rst::TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  rst::StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

  std::vector<rst::RstknnQuery> queries;
  queries.reserve(env.queries.size());
  for (rst::ObjectId qid : env.queries) {
    const rst::StObject& q = env.dataset.object(qid);
    queries.push_back({q.loc, &q.doc, params.k, qid});
  }

  const size_t reps = Reps();
  std::vector<Measurement> series;

  // Serial reference: the plain per-query loop every figure harness uses.
  {
    Measurement m;
    m.mode = "serial";
    const rst::RstknnSearcher searcher(&env.ciur, &env.dataset, &scorer);
    rst::Stopwatch timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      m.answers = 0;
      for (const rst::RstknnQuery& q : queries) {
        m.answers += searcher.Search(q, {}).answers.size();
      }
    }
    m.wall_ms = timer.ElapsedMillis() / static_cast<double>(reps);
    series.push_back(m);
  }
  const double serial_ms = series[0].wall_ms;

  for (size_t threads : {1, 2, 4, 8}) {
    Measurement m;
    m.mode = "batch";
    m.threads = threads;
    ThreadPool pool(threads);
    const BatchRunner runner(&env.ciur, &env.dataset, &scorer, &pool);
    rst::Stopwatch timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      m.answers = 0;
      for (const rst::RstknnResult& r : runner.RunRstknn(queries, {})) {
        m.answers += r.answers.size();
      }
    }
    m.wall_ms = timer.ElapsedMillis() / static_cast<double>(reps);
    m.speedup = m.wall_ms > 0 ? serial_ms / m.wall_ms : 0.0;
    series.push_back(m);
  }

  const unsigned cores = std::thread::hardware_concurrency();
  PrintTitle("micro_batch: batched RSTkNN throughput  (|D|=" +
             std::to_string(env.dataset.size()) + ", " +
             std::to_string(queries.size()) + " queries, k=" +
             std::to_string(params.k) + ", " + std::to_string(cores) +
             " core(s))");
  PrintHeader({"mode", "threads", "wall_ms", "speedup", "|ans|"});
  for (const Measurement& m : series) {
    PrintRow({m.mode, FmtInt(m.threads), Fmt(m.wall_ms), Fmt(m.speedup),
              FmtInt(m.answers)});
  }
  std::printf(
      "\nNote: speedup is vs the serial per-query loop; answers are identical\n"
      "across all rows by the batch determinism contract. Speedup above 1 at\n"
      "N threads requires N physical cores.\n");

  rst::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String("micro_batch");
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("dataset_objects");
  writer.Uint(env.dataset.size());
  writer.Key("queries");
  writer.Uint(queries.size());
  writer.Key("k");
  writer.Uint(params.k);
  writer.Key("series");
  writer.BeginArray();
  for (const Measurement& m : series) {
    writer.BeginObject();
    writer.Key("mode");
    writer.String(m.mode);
    writer.Key("threads");
    writer.Uint(m.threads);
    writer.Key("wall_ms");
    writer.Double(m.wall_ms);
    writer.Key("speedup_vs_serial");
    writer.Double(m.speedup);
    writer.Key("answers");
    writer.Uint(m.answers);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  if (rst::WriteStringToFileAtomic("BENCH_batch.json", writer.TakeString())
          .ok()) {
    std::printf("[series: BENCH_batch.json]\n");
  }

  EmitFigureMetrics("micro_batch");
  return 0;
}
