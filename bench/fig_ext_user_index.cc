// Experiment E11 (2016 paper, Figure 15): users indexed with a MIUR-tree vs
// the in-memory user set, varying |U|. Reports combined simulated I/O
// (object MIR-tree + user MIUR-tree) and the percentage of users whose
// individual top-k was never computed ("Users pruned (%)").
//
// Two location scenarios. With candidate locations inside the audience's own
// neighbourhood every user is reachable in this workload (ground truth
// verified: the max achievable score beats RS_k(u) for every user), so no
// user can be pruned — the honest outcome at this scale (see EXPERIMENTS.md).
// Displaced locations (a campaign outside the neighbourhood) leave only
// textually strong users reachable, which is where the MIUR index skips
// refining the rest — the paper's "Users pruned (%)" regime.

#include "bench_common.h"

#include "rst/common/stopwatch.h"
#include "rst/maxbrst/miur.h"

namespace {

void RunScenario(const rst::bench::ExtParams& params, double offset) {
  using namespace rst::bench;
  using namespace rst;
  for (size_t num_users : {100, 500, 1000, 2000}) {
    const ExtEnv& env = CachedExtEnv(params);
    TextSimilarity sim(TextMeasure::kSum, &env.dataset.corpus_max());
    StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

    double plain_ms = 0, miur_ms = 0, plain_io = 0, miur_io = 0, pruned = 0,
           cover = 0;
    for (size_t rep = 0; rep < Reps(); ++rep) {
      UserGenConfig ucfg;
      ucfg.num_users = num_users;
      ucfg.keywords_per_user = params.ul;
      ucfg.num_unique_keywords = params.uw;
      ucfg.area_extent = num_users <= 500 ? 5.0 : 20.0;
      ucfg.seed = params.seed + 31 * rep;
      const GeneratedUsers gen = GenUsers(env.dataset, ucfg);
      Rect location_area = gen.area;
      location_area.min_x += offset;
      location_area.max_x += offset;
      MaxBrstQuery query;
      query.locations =
          GenCandidateLocations(location_area, params.num_locations, ucfg.seed);
      query.keywords = gen.candidate_keywords;
      query.ws = params.ws;
      query.k = params.k;

      // Plain: all users resident, top-k for everyone.
      Stopwatch timer;
      JointTopKProcessor proc(&env.tree, &env.dataset, &scorer);
      const JointTopKResult joint = proc.Process(gen.users, params.k);
      MaxBrstSolver solver(&env.dataset, &scorer);
      const MaxBrstResult plain =
          solver.Solve(gen.users, joint.rsk, query, KeywordSelect::kApprox);
      plain_ms += timer.ElapsedMillis();
      plain_io += static_cast<double>(joint.io.TotalIos());
      cover += static_cast<double>(plain.coverage());

      // MIUR: users behind an index; refine only where needed.
      IurTreeOptions uopts;
      uopts.max_entries = 16;
      uopts.min_entries = 6;
      const IurTree user_tree = IurTree::BuildFromUsers(gen.users, uopts);
      timer.Restart();
      MiurMaxBrstSolver miur(&env.tree, &env.dataset, &scorer, &user_tree,
                             &gen.users);
      const MiurResult got = miur.Solve(query, KeywordSelect::kApprox);
      miur_ms += timer.ElapsedMillis();
      miur_io += static_cast<double>(got.stats.object_io.TotalIos() +
                                     got.stats.user_io.TotalIos());
      pruned += 100.0 * got.stats.UsersPrunedFraction(gen.users.size());
    }
    const double inv = 1.0 / static_cast<double>(Reps());
    PrintRow({FmtInt(num_users), Fmt(plain_ms * inv), Fmt(miur_ms * inv),
              Fmt(plain_io * inv, 0), Fmt(miur_io * inv, 0),
              Fmt(pruned * inv, 1), Fmt(cover * inv, 1)});
  }
}

}  // namespace

int main() {
  using namespace rst::bench;
  ExtParams params;
  for (const double offset : {0.0, 40.0}) {
    ExtParams scenario = params;
    // Displaced campaigns target keyword-rich users (UL=5): only textually
    // strong users stay reachable at distance, the rest are prunable.
    if (offset > 0) scenario.ul = 5;
    PrintTitle(std::string("E11/Fig15: MIUR user index, vary |U|  (|O|=") +
               std::to_string(scenario.num_objects) +
               (offset > 0 ? ", displaced L, UL=5)" : ", in-area L)"));
    PrintHeader({"|U|", "plain_ms", "miur_ms", "plain_io", "miur_io",
                 "pruned_%", "cover"});
    RunScenario(scenario, offset);
  }
  EmitFigureMetrics("fig_ext_user_index");
  return 0;
}
