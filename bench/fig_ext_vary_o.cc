// Experiment E9 (2016 paper, Figure 13): scalability in the number of
// objects |O| (the paper scales 1M→8M on server hardware; we scale the same
// 2x ladder from a laptop-class base). Costs grow for both methods; pruning
// improves with |O| because the k-th score of every user rises.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  const size_t base = params.num_objects / 2;
  PrintTitle("E9/Fig13: vary |O| (number of objects)");
  PrintHeader({"|O|", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t mult : {1, 2, 4, 8}) {
    params.num_objects = base * mult;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(params.num_objects), Fmt(p.baseline_mrpu_ms, 3),
              Fmt(p.joint_mrpu_ms, 3), Fmt(p.baseline_miocpu, 0),
              Fmt(p.joint_miocpu, 0), Fmt(p.exact_sel_ms),
              Fmt(p.approx_sel_ms), Fmt(p.ratio), Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_o");
  return 0;
}
