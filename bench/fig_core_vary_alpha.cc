// Experiment C2 (SIGMOD 2011 evaluation design): RSTkNN query cost vs alpha.
// Higher alpha = more spatial preference = tighter tree bounds (the R-tree
// groups spatially), so branch-and-bound costs drop; the clustered variants
// matter most at low alpha where text dominates.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  CoreParams params;
  PrintTitle("C2: RSTkNN query cost vs alpha  (|D|=" +
             std::to_string(params.num_objects) +
             ", k=" + std::to_string(params.k) + ")");
  PrintHeader({"alpha", "IUR_ms", "CIUR_ms", "CIUROE_ms", "CIURTE_ms",
               "IUR_io", "CIUR_io", "CIURTE_io", "|ans|"});
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    params.alpha = alpha;
    const CorePoint p = RunCorePoint(params, /*run_baseline=*/false);
    PrintRow({Fmt(alpha, 1), Fmt(p.iur.query_ms), Fmt(p.ciur.query_ms),
              Fmt(p.ciur_oe.query_ms), Fmt(p.ciur_te.query_ms),
              Fmt(p.iur.io, 0), Fmt(p.ciur.io, 0), Fmt(p.ciur_te.io, 0),
              FmtInt(p.answer_size)});
  }
  EmitFigureMetrics("fig_core_vary_alpha");
  return 0;
}
