// Experiment E3 (2016 paper, Figure 7): effect of UL, the number of keywords
// per user. Baseline cost grows with UL (more objects become relevant per
// user); joint-processing I/O stays nearly constant (each node is read once).

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E3/Fig7: vary UL (keywords per user)  (|O|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"UL", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t v : {1, 2, 3, 4, 5, 6}) {
    params.ul = v;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(v), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
              Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
              Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
              Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_ul");
  return 0;
}
