#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

// Shared scaffolding for the figure/table reproduction harnesses. Each
// binary regenerates one table or figure of the evaluated papers (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results).
//
// Environment knobs (all optional):
//   RST_BENCH_OBJECTS — default object count (default 20000; the papers use
//                       1M–8M on server hardware — shapes, not absolutes).
//   RST_BENCH_REPS    — user-set repetitions averaged per point (default 2;
//                       the 2016 paper averages 100).
//   RST_BENCH_THREADS — query-evaluation threads (default 1 = serial). At
//                       >1 every RSTkNN query set runs through the
//                       rst::exec::BatchRunner; answers are identical to the
//                       serial path by the batch determinism contract.

#include <cstdio>
#include <string>
#include <vector>

#include "rst/data/dataset.h"
#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"
#include "rst/iurtree/iurtree.h"
#include "rst/maxbrst/joint_topk.h"
#include "rst/maxbrst/maxbrst.h"
#include "rst/rstknn/rstknn.h"
#include "rst/text/similarity.h"

#include "rst/exec/thread_pool.h"

namespace rst {
namespace obs {
class JsonWriter;
}  // namespace obs
}  // namespace rst

namespace rst::bench {

size_t DefaultObjects();
size_t Reps();
size_t Threads();

/// Process-wide pool sized by Threads(), shared by every batched
/// measurement in the binary. ThreadPool(1) degenerates to inline serial
/// execution, so it is always safe to route through.
exec::ThreadPool& SharedPool();

/// Fixed-width table printing.
void PrintTitle(const std::string& title);
void PrintHeader(const std::vector<std::string>& cols);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double v, int precision = 2);
std::string FmtInt(uint64_t v);

/// Appends the shared environment header every BENCH_*.json /
/// *.metrics.json artifact carries: {"hardware_threads", "build_type",
/// "objects", "reps", "threads"} — enough to tell two runs' numbers apart
/// without rerunning them.
void AppendEnvJson(obs::JsonWriter* writer);

/// Writes `<figure>.metrics.json` into the working directory (crash-atomic
/// temp-file + rename): a JSON object {"figure": ..., "env": <AppendEnvJson>,
/// "metrics": <global registry snapshot>} with every counter, gauge, and
/// histogram the run published (same schema as the CLI's --metrics-out
/// artifact). Call once at the end of each figure binary.
void EmitFigureMetrics(const std::string& figure);

/// --- 2016 extension experiments (MaxBRSTkNN) -----------------------------

/// Default parameters (the bold column of the 2016 paper's Table 5, with
/// object counts scaled for a single-core run).
struct ExtParams {
  size_t num_objects = DefaultObjects();
  size_t num_users = 100;        // |U|
  size_t ul = 3;                 // keywords per user
  size_t uw = 20;                // unique user keywords (= |W|)
  double area = 5.0;             // user MBR extent (world is 100x100)
  size_t num_locations = 20;     // |L|
  size_t ws = 2;
  size_t k = 10;
  double alpha = 0.5;
  Weighting weighting = Weighting::kLanguageModel;
  bool yelp = false;             // Yelp-like (long docs) instead of Flickr
  uint64_t seed = 1;
};

/// One measured point of the extension pipeline.
struct ExtPoint {
  double baseline_mrpu_ms = 0;   // mean per-user runtime, per-user baseline
  double joint_mrpu_ms = 0;      // mean per-user runtime, joint processing
  double baseline_miocpu = 0;    // mean simulated I/O per user
  double joint_miocpu = 0;
  double exact_sel_ms = 0;       // candidate-selection runtime (exact)
  double approx_sel_ms = 0;      // candidate-selection runtime (approx)
  double ratio = 1.0;            // approx coverage / exact coverage
  double exact_coverage = 0;     // |BRSTkNN| of the exact optimum
};

/// Builds the environment and measures both phases, averaged over Reps()
/// user sets. `run_selection` can be false for figures that only study the
/// top-k phase.
ExtPoint RunExtPoint(const ExtParams& params, bool run_selection = true,
                     bool run_exact = true);

/// Shared dataset + object-index cache: regenerating and re-indexing objects
/// for every sweep value is wasteful when only user-side parameters change.
struct ExtEnv {
  Dataset dataset;
  IurTree tree;
};
const ExtEnv& CachedExtEnv(const ExtParams& params);

/// --- 2011 core experiments (RSTkNN) ---------------------------------------

struct CoreParams {
  /// Half the extension default: the 2011-style baseline precompute is a
  /// full per-object top-k pass, which dominates the figure runtime.
  size_t num_objects = DefaultObjects() / 2;
  size_t k = 10;
  double alpha = 0.5;
  uint32_t num_clusters = 8;
  size_t num_queries = 4;
  TextMeasure measure = TextMeasure::kExtendedJaccard;
  Weighting weighting = Weighting::kTfIdf;
  uint64_t seed = 7;
};

struct CoreVariantPoint {
  double query_ms = 0;
  double io = 0;
};

/// One measured point per algorithm variant.
struct CorePoint {
  CoreVariantPoint baseline;   // precompute-kNN baseline (query phase)
  CoreVariantPoint iur;        // branch-and-bound on the IUR-tree
  CoreVariantPoint ciur;       // + text clustering
  CoreVariantPoint ciur_oe;    // + outlier extraction
  CoreVariantPoint ciur_te;    // + text-entropy expansion policy
  double baseline_build_ms = 0;
  size_t answer_size = 0;      // mean |RSTkNN| (sanity)
};

/// The prebuilt environment for one core configuration (shared across
/// sweeps over k / α which do not change the indexes).
struct CoreEnv {
  Dataset dataset;
  std::vector<uint32_t> clusters;
  std::vector<uint32_t> clusters_oe;
  IurTree iur;
  IurTree ciur;
  IurTree ciur_oe;
  std::vector<ObjectId> queries;
};

/// Builds (and caches by (num_objects, num_clusters, seed)) a core
/// environment.
const CoreEnv& CachedCoreEnv(const CoreParams& params);

/// Measures all variants at one (k, alpha) point. Baseline precompute is
/// rebuilt per k (its thresholds depend on k).
CorePoint RunCorePoint(const CoreParams& params, bool run_baseline = true);

}  // namespace rst::bench

#endif  // BENCH_BENCH_COMMON_H_
