// Experiment E4 (2016 paper, Figure 8): effect of UW, the number of unique
// user keywords (which doubles as the candidate keyword set W). Lower UW =
// more keyword sharing = bigger joint-processing benefit; selection runtime
// grows with UW for both methods (larger combination space), and the
// approximation ratio degrades gradually as UW grows.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E4/Fig8: vary UW (unique user keywords = |W|)  (|O|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"UW", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t v : {5, 10, 20, 30, 40}) {
    params.uw = v;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(v), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
              Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
              Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
              Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_uw");
  return 0;
}
