// Experiment E1 (2016 paper, Figure 5): effect of k on (a) the top-k phase —
// per-user baseline (B) vs joint processing (J), runtime and simulated I/O —
// and (b) candidate selection — exact (E) vs approximate (A) runtime and the
// approximation ratio. Reported for all three text relevance measures.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  struct MeasureRow {
    const char* name;
    rst::Weighting weighting;
  };
  const MeasureRow measures[] = {
      {"LM", rst::Weighting::kLanguageModel},
      {"TFIDF", rst::Weighting::kTfIdf},
      {"KO", rst::Weighting::kBinary},
  };
  for (const MeasureRow& m : measures) {
    ExtParams params;
    params.weighting = m.weighting;
    PrintTitle(std::string("E1/Fig5 (") + m.name +
               "): vary k  (|O|=" + std::to_string(params.num_objects) +
               ", |U|=" + std::to_string(params.num_users) + ")");
    PrintHeader({"k", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
                 "selE_ms", "selA_ms", "ratio", "cover"});
    for (size_t k : {5, 10, 20, 50, 100}) {
      params.k = k;
      const ExtPoint p = RunExtPoint(params);
      PrintRow({FmtInt(k), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
                Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
                Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
                Fmt(p.exact_coverage, 1)});
    }
  }
  EmitFigureMetrics("fig_ext_vary_k");
  return 0;
}
