// Frozen flat-layout index: pointer-tree vs frozen-view RSTkNN traversal,
// plus the index life-cycle costs (STR build at 1..N threads, freeze,
// serialize, load). Answers are byte-identical across every row by the
// tree-view determinism contract, so the traversal delta is pure memory
// layout: SoA arrays + one contiguous term-weight pool vs unique_ptr nodes
// with scattered per-entry vectors.
//
// Besides the console table this writes BENCH_frozen.json into the working
// directory, including the host core count — the parallel-build speedup is
// meaningless without it, and on a 1-core CI runner both it and the
// traversal delta can disappear into noise (recorded caveat, PR-2
// precedent).

#include "bench_common.h"

#include <thread>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/frozen/frozen.h"
#include "rst/obs/json.h"

namespace {

struct Measurement {
  std::string view;
  double wall_ms = 0;
  double speedup = 1.0;
  size_t answers = 0;
};

}  // namespace

int main() {
  using namespace rst::bench;
  using rst::frozen::FrozenTree;

  CoreParams params;
  params.num_queries = 16;
  const CoreEnv& env = CachedCoreEnv(params);
  rst::TextSimilarity sim(params.measure, &env.dataset.corpus_max());
  rst::StScorer scorer(&sim, {params.alpha, env.dataset.max_dist()});

  std::vector<rst::RstknnQuery> queries;
  queries.reserve(env.queries.size());
  for (rst::ObjectId qid : env.queries) {
    const rst::StObject& q = env.dataset.object(qid);
    queries.push_back({q.loc, &q.doc, params.k, qid});
  }
  const size_t reps = Reps();

  // --- Index life cycle -----------------------------------------------------
  std::vector<rst::IurTree::Item> items;
  items.reserve(env.dataset.size());
  for (const rst::StObject& o : env.dataset.objects()) {
    items.push_back({o.id, o.loc, &o.doc});
  }
  rst::IurTreeOptions topts;
  double build1_ms = 0;
  double buildn_ms = 0;
  const unsigned cores = std::thread::hardware_concurrency();
  const size_t build_threads = cores > 1 ? cores : 4;
  for (size_t rep = 0; rep < reps; ++rep) {
    rst::Stopwatch timer;
    topts.build_threads = 1;
    const rst::IurTree serial = rst::IurTree::Build(items, topts);
    build1_ms += timer.ElapsedMillis();
    timer.Restart();
    topts.build_threads = build_threads;
    const rst::IurTree threaded = rst::IurTree::Build(items, topts);
    buildn_ms += timer.ElapsedMillis();
  }
  build1_ms /= static_cast<double>(reps);
  buildn_ms /= static_cast<double>(reps);

  rst::Stopwatch lifecycle;
  const FrozenTree frozen = FrozenTree::Freeze(env.ciur);
  const double freeze_ms = lifecycle.ElapsedMillis();
  lifecycle.Restart();
  const std::string bytes = frozen.SerializeToString();
  const double serialize_ms = lifecycle.ElapsedMillis();
  lifecycle.Restart();
  const rst::Result<FrozenTree> loaded = FrozenTree::Deserialize(bytes);
  const double load_ms = lifecycle.ElapsedMillis();
  if (!loaded.ok()) {
    std::fprintf(stderr, "deserialize failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  // --- Query traversal: pointer vs frozen vs loaded-frozen ------------------
  std::vector<Measurement> series;
  auto measure = [&](const std::string& view,
                     const rst::RstknnSearcher& searcher) {
    Measurement m;
    m.view = view;
    rst::Stopwatch timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      m.answers = 0;
      for (const rst::RstknnQuery& q : queries) {
        rst::RstknnOptions options;
        options.publish_metrics = false;
        m.answers += searcher.Search(q, options).answers.size();
      }
    }
    m.wall_ms = timer.ElapsedMillis() / static_cast<double>(reps);
    series.push_back(m);
  };
  measure("pointer", rst::RstknnSearcher(&env.ciur, &env.dataset, &scorer));
  measure("frozen", rst::RstknnSearcher(&frozen, &env.dataset, &scorer));
  measure("frozen_loaded",
          rst::RstknnSearcher(&loaded.value(), &env.dataset, &scorer));
  const double pointer_ms = series[0].wall_ms;
  for (Measurement& m : series) {
    m.speedup = m.wall_ms > 0 ? pointer_ms / m.wall_ms : 0.0;
    if (m.answers != series[0].answers) {
      std::fprintf(stderr, "answer mismatch in view %s\n", m.view.c_str());
      return 1;
    }
  }

  PrintTitle("micro_frozen: frozen flat-layout index  (|D|=" +
             std::to_string(env.dataset.size()) + ", " +
             std::to_string(queries.size()) + " queries, k=" +
             std::to_string(params.k) + ", " + std::to_string(cores) +
             " core(s))");
  PrintHeader({"view", "wall_ms", "speedup", "|ans|"});
  for (const Measurement& m : series) {
    PrintRow({m.view, Fmt(m.wall_ms), Fmt(m.speedup), FmtInt(m.answers)});
  }
  std::printf("\nbuild: %.2f ms serial, %.2f ms at %zu threads (%.2fx)\n",
              build1_ms, buildn_ms, build_threads,
              buildn_ms > 0 ? build1_ms / buildn_ms : 0.0);
  std::printf("freeze: %.2f ms, serialize: %.2f ms (%zu bytes), load: %.2f ms\n",
              freeze_ms, serialize_ms, bytes.size(), load_ms);
  std::printf(
      "\nNote: answers are byte-identical across all rows (tree-view\n"
      "determinism contract). On a 1-core runner the parallel-build speedup\n"
      "degenerates to ~1x and the traversal delta can sit inside timer noise\n"
      "at bench-sized datasets; judge the layout win on multi-core hardware\n"
      "or larger RST_BENCH_OBJECTS.\n");

  rst::obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("figure");
  writer.String("micro_frozen");
  writer.Key("env");
  AppendEnvJson(&writer);
  writer.Key("dataset_objects");
  writer.Uint(env.dataset.size());
  writer.Key("queries");
  writer.Uint(queries.size());
  writer.Key("k");
  writer.Uint(params.k);
  writer.Key("build_serial_ms");
  writer.Double(build1_ms);
  writer.Key("build_threads");
  writer.Uint(build_threads);
  writer.Key("build_parallel_ms");
  writer.Double(buildn_ms);
  writer.Key("freeze_ms");
  writer.Double(freeze_ms);
  writer.Key("serialize_ms");
  writer.Double(serialize_ms);
  writer.Key("serialized_bytes");
  writer.Uint(bytes.size());
  writer.Key("load_ms");
  writer.Double(load_ms);
  writer.Key("series");
  writer.BeginArray();
  for (const Measurement& m : series) {
    writer.BeginObject();
    writer.Key("view");
    writer.String(m.view);
    writer.Key("wall_ms");
    writer.Double(m.wall_ms);
    writer.Key("speedup_vs_pointer");
    writer.Double(m.speedup);
    writer.Key("answers");
    writer.Uint(m.answers);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  if (rst::WriteStringToFileAtomic("BENCH_frozen.json", writer.TakeString())
          .ok()) {
    std::printf("\nwrote BENCH_frozen.json\n");
  }
  return 0;
}
