// Experiment E8 (2016 paper, Figure 12): scalability in the number of users.
// The baseline's cost grows linearly with |U| (a full top-k search each);
// joint processing shares the single traversal, so its per-user cost drops.

#include "bench_common.h"

int main() {
  using namespace rst::bench;
  ExtParams params;
  PrintTitle("E8/Fig12: vary |U| (number of users)  (|O|=" +
             std::to_string(params.num_objects) + ")");
  PrintHeader({"|U|", "B_MRPU_ms", "J_MRPU_ms", "B_MIOCPU", "J_MIOCPU",
               "selE_ms", "selA_ms", "ratio", "cover"});
  for (size_t v : {100, 500, 1000, 2000, 4000}) {
    params.num_users = v;
    // Wider areas are needed to find enough distinct object locations.
    params.area = v <= 500 ? 5.0 : 20.0;
    const ExtPoint p = RunExtPoint(params);
    PrintRow({FmtInt(v), Fmt(p.baseline_mrpu_ms, 3), Fmt(p.joint_mrpu_ms, 3),
              Fmt(p.baseline_miocpu, 0), Fmt(p.joint_miocpu, 0),
              Fmt(p.exact_sel_ms), Fmt(p.approx_sel_ms), Fmt(p.ratio),
              Fmt(p.exact_coverage, 1)});
  }
  EmitFigureMetrics("fig_ext_vary_u");
  return 0;
}
